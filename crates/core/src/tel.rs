//! The Transactional Edge Log (TEL) — the paper's core data structure (§3).
//!
//! A TEL stores the adjacency list of one `(source vertex, label)` pair as a
//! log inside a single power-of-two block:
//!
//! ```text
//! +---------------------------+ 0
//! | header (64 B)             |  source vertex, label, commit timestamp CT,
//! |                           |  committed log size LS, committed property
//! |                           |  size PS, previous-version pointer, order
//! +---------------------------+ 64
//! | blocked Bloom filter      |  1/16 of the block for blocks ≥ 1 KiB
//! +---------------------------+ data_start
//! | property entries →        |  variable-size, grow forward
//! |        ... free space ... |
//! |            ← edge entries |  fixed 32 B, grow backward from the end
//! +---------------------------+ block size
//! ```
//!
//! Edge log entries are appended right-to-left and scanned left-to-right
//! (newest first), matching the time locality of social-network reads. Each
//! entry carries a **creation** and an **invalidation** timestamp; both are
//! 8-byte aligned so they can be read and written atomically, which is what
//! lets concurrent transactions coordinate without disturbing the purely
//! sequential scan (§5).
//!
//! A `TelRef` is an unowned view over raw block memory. All methods take the
//! *log size* / *property size* to operate against explicitly, because a
//! reader must use the committed sizes from the header while a writer uses
//! its transaction-private extended sizes.

use std::marker::PhantomData;
// The header words are accessed by pointer-casting raw block memory, which
// the loom-shimmed facade types cannot overlay — so the raw `std` atomic
// types are used here, while every *ordering decision* for the seal
// protocol lives in the shared, model-checked `crate::seal` functions
// (`Ordering` below is the facade re-export, identical in both cfgs).
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64}; // repolint: allow(facade-import)

use livegraph_storage::BlockPtr;

use crate::bloom::{bloom_bytes_for_block, BloomFilter};
use crate::seal::{self, SealWords};
use crate::sync::atomic::Ordering;
use crate::types::{Label, Timestamp, TxnId, VertexId, NULL_TS};

/// Size of the fixed TEL header in bytes.
pub const TEL_HEADER_SIZE: usize = 64;
/// Size of one edge log entry in bytes.
pub const EDGE_ENTRY_SIZE: usize = 32;
/// The smallest TEL block (header + one entry), i.e. 64-byte granule × 2.
pub const MIN_TEL_BLOCK: usize = TEL_HEADER_SIZE + EDGE_ENTRY_SIZE * 2;

// Header field offsets.
const OFF_SRC: usize = 0;
const OFF_LABEL: usize = 8;
const OFF_COMMIT_TS: usize = 16;
const OFF_LOG_SIZE: usize = 24;
const OFF_PROP_SIZE: usize = 32;
const OFF_PREV: usize = 40;
const OFF_ORDER: usize = 48;
// Invalidation summary (carved out of the formerly reserved bytes 49..64):
// the number of *committed* invalidations inside the committed log, and the
// largest commit epoch that invalidated an entry. See the "seal protocol"
// section of docs/ARCHITECTURE.md for the update/read ordering rules.
const OFF_INV_COUNT: usize = 52;
const OFF_MAX_INV: usize = 56;

/// Visibility check used by every adjacency-list scan (§5).
///
/// An entry is visible to a read with epoch `tre` issued by transaction
/// `tid` (0 for read-only transactions) iff
///
/// * it was committed at or before `tre` and not invalidated at or before
///   `tre` (`invalidation` being `NULL_TS` or negative — an uncommitted
///   invalidation by *another* transaction — keeps it visible, but an
///   invalidation by the reading transaction itself hides it), **or**
/// * it is this very transaction's own uncommitted write
///   (`creation == -tid`) that it has not itself invalidated.
#[inline]
pub fn entry_visible(creation: Timestamp, invalidation: Timestamp, tre: Timestamp, tid: TxnId) -> bool {
    if creation > 0 && creation <= tre {
        // A transaction reads its own earlier deletes/updates: an entry it
        // invalidated itself is no longer part of its view.
        if tid != 0 && invalidation == -tid {
            return false;
        }
        invalidation < 0 || tre < invalidation
    } else {
        tid != 0 && creation == -tid && invalidation != -tid
    }
}

/// How a [`TelRef::find_edge_probed`] point lookup was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeProbe {
    /// The Bloom filter proved the destination absent; no entry was read.
    pub bloom_negative: bool,
    /// Number of log entries examined by the scan (0 on a Bloom negative).
    pub entries_scanned: usize,
}

/// An unowned, lifetime-tagged view over one edge log entry.
#[derive(Clone, Copy)]
pub struct EdgeEntryRef<'a> {
    ptr: *mut u8,
    _marker: PhantomData<&'a ()>,
}

impl<'a> EdgeEntryRef<'a> {
    #[inline]
    fn atomic_i64(&self, off: usize) -> &AtomicI64 {
        // SAFETY: entry pointers are 8-byte aligned (entries are 32 bytes and
        // blocks are 64-byte aligned) and within the block.
        unsafe { &*(self.ptr.add(off) as *const AtomicI64) }
    }

    /// Destination vertex of this edge.
    #[inline]
    pub fn dst(&self) -> VertexId {
        // SAFETY: see `atomic_i64`.
        unsafe { (self.ptr as *const u64).read() }
    }

    #[inline]
    fn set_dst(&self, dst: VertexId) {
        // SAFETY: see `atomic_i64`; plain write — only transaction-private
        // entries (negative creation ts) are mutated through this.
        unsafe { (self.ptr as *mut u64).write(dst) }
    }

    /// Creation timestamp (negative while transaction-private).
    #[inline]
    pub fn creation_ts(&self) -> Timestamp {
        // ORDERING: Acquire pairs with the Release in `set_creation_ts`, so
        // a reader that sees a positive (committed) ts also sees the entry
        // payload written before the apply-phase publish.
        self.atomic_i64(8).load(Ordering::Acquire)
    }

    /// Atomically publishes a new creation timestamp.
    #[inline]
    pub fn set_creation_ts(&self, ts: Timestamp) {
        // ORDERING: Release pairs with the Acquire in `creation_ts`.
        self.atomic_i64(8).store(ts, Ordering::Release);
    }

    /// Invalidation timestamp (`NULL_TS` if not invalidated).
    #[inline]
    pub fn invalidation_ts(&self) -> Timestamp {
        // ORDERING: Acquire pairs with the Release in `set_invalidation_ts`.
        self.atomic_i64(16).load(Ordering::Acquire)
    }

    /// Atomically publishes a new invalidation timestamp.
    #[inline]
    pub fn set_invalidation_ts(&self, ts: Timestamp) {
        // ORDERING: Release pairs with the Acquire in `invalidation_ts`.
        self.atomic_i64(16).store(ts, Ordering::Release);
    }

    /// Offset of this entry's property bytes within the block.
    #[inline]
    pub fn prop_offset(&self) -> u32 {
        // SAFETY: offset 24 is in bounds of the 32-byte entry; the word is
        // written before the entry is published (see `set_prop`).
        unsafe { (self.ptr.add(24) as *const u32).read() }
    }

    /// Length of this entry's property bytes.
    #[inline]
    pub fn prop_len(&self) -> u32 {
        // SAFETY: offset 28 is in bounds of the 32-byte entry, written
        // before publication like `prop_offset`.
        unsafe { (self.ptr.add(28) as *const u32).read() }
    }

    #[inline]
    fn set_prop(&self, offset: u32, len: u32) {
        // SAFETY: in-bounds plain writes; only called on entries not yet
        // visible to readers (log size not yet advanced past them).
        unsafe {
            (self.ptr.add(24) as *mut u32).write(offset);
            (self.ptr.add(28) as *mut u32).write(len);
        }
    }

    /// True if this entry is visible at `tre` for transaction `tid`.
    #[inline]
    pub fn visible(&self, tre: Timestamp, tid: TxnId) -> bool {
        entry_visible(self.creation_ts(), self.invalidation_ts(), tre, tid)
    }
}

/// An unowned view over a TEL block.
#[derive(Clone, Copy)]
pub struct TelRef<'a> {
    ptr: *mut u8,
    size: usize,
    _marker: PhantomData<&'a ()>,
}

impl<'a> TelRef<'a> {
    /// Wraps raw block memory as a TEL.
    ///
    /// # Safety
    /// `ptr` must point to a block of exactly `size` bytes, 64-byte aligned,
    /// valid for the lifetime `'a`. Concurrent mutation must follow the TEL
    /// protocol (only timestamp words and the header atomics are written
    /// while readers may be active).
    #[inline]
    pub unsafe fn from_raw(ptr: *mut u8, size: usize) -> Self {
        debug_assert!(size >= MIN_TEL_BLOCK);
        // 8-byte alignment is what the atomics require; the block store
        // additionally provides 64-byte (cache line) alignment.
        debug_assert_eq!(ptr as usize % 8, 0);
        Self {
            ptr,
            size,
            _marker: PhantomData,
        }
    }

    /// Initialises a freshly allocated (zeroed) block as an empty TEL.
    pub fn init(&self, src: VertexId, label: Label, order: u8, prev: BlockPtr) {
        // SAFETY: header offsets are in bounds (block >= MIN_TEL_BLOCK) and
        // the block is private until its pointer is published to an index.
        unsafe {
            (self.ptr.add(OFF_SRC) as *mut u64).write(src);
            (self.ptr.add(OFF_LABEL) as *mut u64).write(label as u64);
            self.ptr.add(OFF_ORDER).write(order);
            (self.ptr.add(OFF_PREV) as *mut u64).write(prev);
        }
        // ORDERING: Release — belt-and-braces; the block only becomes
        // reachable via a Release index publication after init returns.
        self.commit_ts_atomic().store(0, Ordering::Release);
        self.log_size_atomic().store(0, Ordering::Release);
        self.prop_size_atomic().store(0, Ordering::Release);
        self.set_invalidation_summary(0, 0);
    }

    /// Block size in bytes.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.size
    }

    /// Raw base pointer of the block (used for property slices).
    #[inline]
    pub fn base_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Source vertex recorded in the header.
    #[inline]
    pub fn src_vertex(&self) -> VertexId {
        // SAFETY: in-bounds header word, written once in `init` before the
        // block became reachable and immutable afterwards.
        unsafe { (self.ptr.add(OFF_SRC) as *const u64).read() }
    }

    /// Edge label recorded in the header.
    #[inline]
    pub fn label(&self) -> Label {
        // SAFETY: in-bounds immutable header word (see `src_vertex`).
        unsafe { (self.ptr.add(OFF_LABEL) as *const u64).read() as Label }
    }

    /// Size-class order recorded in the header.
    #[inline]
    pub fn order(&self) -> u8 {
        // SAFETY: in-bounds immutable header byte (see `src_vertex`).
        unsafe { self.ptr.add(OFF_ORDER).read() }
    }

    /// Pointer to the previous version of this TEL (for compaction GC).
    #[inline]
    pub fn prev_ptr(&self) -> BlockPtr {
        // SAFETY: in-bounds header word; mutated only under the vertex
        // lock (see `set_prev_ptr`), and GC walks hold that lock too.
        unsafe { (self.ptr.add(OFF_PREV) as *const u64).read() }
    }

    /// Updates the previous-version pointer.
    #[inline]
    pub fn set_prev_ptr(&self, prev: BlockPtr) {
        // SAFETY: in-bounds plain write, only under the vertex lock.
        unsafe { (self.ptr.add(OFF_PREV) as *mut u64).write(prev) }
    }

    #[inline]
    fn commit_ts_atomic(&self) -> &AtomicI64 {
        // SAFETY: OFF_COMMIT_TS is 8-byte aligned within the header; block
        // memory outlives `'a` (see `from_raw`).
        unsafe { &*(self.ptr.add(OFF_COMMIT_TS) as *const AtomicI64) }
    }

    #[inline]
    fn log_size_atomic(&self) -> &AtomicU64 {
        // SAFETY: 8-byte-aligned in-bounds header word (see above).
        unsafe { &*(self.ptr.add(OFF_LOG_SIZE) as *const AtomicU64) }
    }

    #[inline]
    fn prop_size_atomic(&self) -> &AtomicU64 {
        // SAFETY: 8-byte-aligned in-bounds header word (see above).
        unsafe { &*(self.ptr.add(OFF_PROP_SIZE) as *const AtomicU64) }
    }

    /// Timestamp of the last transaction that committed a change to this
    /// TEL (`CT` in the paper). Used for the cheap first-updater-wins check.
    #[inline]
    pub fn commit_ts(&self) -> Timestamp {
        // ORDERING: Acquire pairs with the Release CT store in
        // `seal::publish_commit`; loaded *last* by `seal::covered_log` so a
        // torn apply is self-detecting (CT > TRE forces the checked path).
        self.commit_ts_atomic().load(Ordering::Acquire)
    }

    /// Publishes the commit timestamp. Outside the apply phase only
    /// (recovery, compaction, block upgrade — contexts with mutual
    /// exclusion); the apply phase must use [`Self::publish_commit`] so the
    /// CT-before-LS store order is preserved.
    #[inline]
    pub fn set_commit_ts(&self, ts: Timestamp) {
        // ORDERING: Release pairs with the Acquire loads in the seal
        // protocol's reader path (`seal::covered_log`).
        self.commit_ts_atomic().store(ts, Ordering::Release);
    }

    /// Apply-phase publication of a commit at `epoch` with the new
    /// committed log size: delegates to the shared, model-checked
    /// [`seal::publish_commit`] so the store order (`CT` first, then `LS`)
    /// is written exactly once. Invalidations must be recorded *after*
    /// via [`Self::add_invalidations`].
    #[inline]
    pub fn publish_commit(&self, epoch: Timestamp, log_bytes: u64) {
        seal::publish_commit(self, epoch, log_bytes);
    }

    /// Committed log size `LS` in bytes (edge entries).
    #[inline]
    pub fn log_size(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release LS store in the apply
        // phase, so entries below LS are fully written when observed.
        self.log_size_atomic().load(Ordering::Acquire)
    }

    /// Publishes a new committed log size (apply phase).
    #[inline]
    pub fn set_log_size(&self, bytes: u64) {
        // ORDERING: Release — entry payloads written before this store are
        // visible to any reader whose Acquire load sees the new LS.
        self.log_size_atomic().store(bytes, Ordering::Release);
    }

    /// Committed property-region size `PS` in bytes.
    #[inline]
    pub fn prop_size(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release in `set_prop_size`.
        self.prop_size_atomic().load(Ordering::Acquire)
    }

    /// Publishes a new committed property size (apply phase).
    #[inline]
    pub fn set_prop_size(&self, bytes: u64) {
        // ORDERING: Release — property bytes precede the size publish.
        self.prop_size_atomic().store(bytes, Ordering::Release);
    }

    #[inline]
    fn inv_count_atomic(&self) -> &AtomicU32 {
        // SAFETY: offset 52 is 4-byte aligned inside the 64-byte header.
        unsafe { &*(self.ptr.add(OFF_INV_COUNT) as *const AtomicU32) }
    }

    #[inline]
    fn max_inv_atomic(&self) -> &AtomicI64 {
        // SAFETY: OFF_MAX_INV is 8-byte aligned inside the header.
        unsafe { &*(self.ptr.add(OFF_MAX_INV) as *const AtomicI64) }
    }

    /// Number of committed (positive-epoch) invalidations inside the
    /// committed log. `0` means the committed log is *sealed*: every entry
    /// in it is visible to any reader whose epoch covers the commit
    /// timestamp, so scans may skip per-entry visibility checks.
    #[inline]
    pub fn invalidated_count(&self) -> u32 {
        // ORDERING: Acquire pairs with the AcqRel RMWs in
        // `seal::record_invalidations`; loaded *first* by
        // `seal::covered_log` (before LS and CT) per the seal protocol.
        self.inv_count_atomic().load(Ordering::Acquire)
    }

    /// Largest commit epoch that invalidated an entry of this TEL (0 if
    /// none). Purely informational: compaction heuristics and debugging.
    #[inline]
    pub fn max_invalidation_ts(&self) -> Timestamp {
        // ORDERING: Acquire — informational, paired with the AcqRel
        // fetch_max in `seal::record_invalidations`.
        self.max_inv_atomic().load(Ordering::Acquire)
    }

    /// Overwrites the invalidation summary. Only valid while no concurrent
    /// writer can touch the TEL (init, block upgrade, compaction rewrite —
    /// all run under the vertex lock or on private blocks). Delegates to
    /// the shared, model-checked [`seal::reset_summary`].
    #[inline]
    pub fn set_invalidation_summary(&self, count: u32, max_ts: Timestamp) {
        seal::reset_summary(self, count, max_ts);
    }

    /// Records `count` freshly committed invalidations at `epoch` (apply
    /// phase). Must be called *after* [`Self::publish_commit`]; the
    /// ordering rationale lives with the shared, model-checked
    /// [`seal::record_invalidations`].
    #[inline]
    pub fn add_invalidations(&self, count: u32, epoch: Timestamp) {
        seal::record_invalidations(self, count, epoch);
    }

    /// Seal check for a read-only snapshot at epoch `tre`: returns the
    /// committed log size if **every** entry in it is visible at `tre`
    /// without per-entry checks, i.e. the last commit is covered by the
    /// snapshot (`CT <= tre`) and no committed invalidation exists.
    ///
    /// The load-order discipline that makes torn reads self-detecting is
    /// shared with the loom model harness — see [`seal::try_seal`].
    #[inline]
    pub fn sealed_log(&self, tre: Timestamp) -> Option<u64> {
        seal::try_seal(self, tre)
    }

    /// O(1) visible-edge count for a read-only snapshot at `tre`, available
    /// whenever the last commit is covered by the snapshot (the summary
    /// counts exactly the invisible entries then). Returns `None` when the
    /// TEL has newer commits and the caller must count via a checked scan.
    #[inline]
    pub fn sealed_visible_count(&self, tre: Timestamp) -> Option<usize> {
        seal::covered_log(self, tre)
            .map(|(log, inv)| Self::entry_count(log).saturating_sub(inv as usize))
    }

    /// Offset where the property region starts (after header and Bloom
    /// filter).
    #[inline]
    pub fn data_start(&self) -> usize {
        TEL_HEADER_SIZE + bloom_bytes_for_block(self.size)
    }

    /// View over the embedded Bloom filter (possibly empty).
    #[inline]
    pub fn bloom(&self) -> BloomFilter {
        let len = bloom_bytes_for_block(self.size);
        // SAFETY: the region [header, header+len) lies inside the block and
        // is 8-byte aligned.
        unsafe { BloomFilter::from_raw(self.ptr.add(TEL_HEADER_SIZE), len) }
    }

    /// Number of entries in a log of `log_bytes` bytes.
    #[inline]
    pub fn entry_count(log_bytes: u64) -> usize {
        (log_bytes as usize) / EDGE_ENTRY_SIZE
    }

    /// Free bytes remaining between the property head and the entry tail.
    #[inline]
    pub fn free_space(&self, log_bytes: u64, prop_bytes: u64) -> usize {
        self.size
            .saturating_sub(self.data_start())
            .saturating_sub(log_bytes as usize)
            .saturating_sub(prop_bytes as usize)
    }

    /// True if an entry with `prop_len` property bytes fits given current
    /// log/property usage.
    #[inline]
    pub fn fits(&self, log_bytes: u64, prop_bytes: u64, prop_len: usize) -> bool {
        self.free_space(log_bytes, prop_bytes) >= EDGE_ENTRY_SIZE + prop_len
    }

    /// Returns the entry whose *slot* is `slot`, where slot 0 is the oldest
    /// entry (at the very end of the block).
    #[inline]
    pub fn entry_at_slot(&self, slot: usize) -> EdgeEntryRef<'a> {
        let off = self.size - (slot + 1) * EDGE_ENTRY_SIZE;
        debug_assert!(off >= self.data_start());
        EdgeEntryRef {
            // SAFETY: offset checked against the data region above.
            ptr: unsafe { self.ptr.add(off) },
            _marker: PhantomData,
        }
    }

    /// Appends a new edge log entry given the current (possibly
    /// transaction-private) log and property usage.
    ///
    /// Returns the new `(log_bytes, prop_bytes)` pair, or `None` if the
    /// entry does not fit and the TEL must be upgraded to a larger block.
    /// The entry is written with `invalidation = NULL_TS` and the given
    /// creation timestamp (normally `-TID`); it only becomes visible to
    /// other transactions once the committed `LS` covers it.
    pub fn append(
        &self,
        log_bytes: u64,
        prop_bytes: u64,
        dst: VertexId,
        creation_ts: Timestamp,
        properties: &[u8],
    ) -> Option<(u64, u64)> {
        if !self.fits(log_bytes, prop_bytes, properties.len()) {
            return None;
        }
        // Write property bytes first (they are only reachable through the
        // entry, which is published afterwards).
        let prop_offset = self.data_start() + prop_bytes as usize;
        if !properties.is_empty() {
            // SAFETY: fits() guarantees the range is inside the free gap.
            unsafe {
                std::ptr::copy_nonoverlapping(properties.as_ptr(), self.ptr.add(prop_offset), properties.len());
            }
        }
        let slot = Self::entry_count(log_bytes);
        let entry = self.entry_at_slot(slot);
        entry.set_dst(dst);
        entry.set_prop(prop_offset as u32, properties.len() as u32);
        entry.set_invalidation_ts(NULL_TS);
        entry.set_creation_ts(creation_ts);
        self.bloom().insert(dst);
        Some((
            log_bytes + EDGE_ENTRY_SIZE as u64,
            prop_bytes + properties.len() as u64,
        ))
    }

    /// Purely sequential scan over the log: iterates entries newest → oldest
    /// for a log of `log_bytes` bytes.
    #[inline]
    pub fn scan(&self, log_bytes: u64) -> TelScan<'a> {
        TelScan {
            tel: *self,
            next_slot: Self::entry_count(log_bytes),
        }
    }

    /// Streams the destination vertex of every entry in a **sealed** log,
    /// newest first, with no per-entry visibility checks: one plain 8-byte
    /// load per 32-byte entry at monotonically increasing addresses — the
    /// purest form of the paper's sequential scan.
    ///
    /// Callers must have established the seal via [`TelRef::sealed_log`]
    /// (or otherwise know every entry in `log_bytes` is visible). Reading
    /// only the `dst` word is data-race-free even while concurrent writers
    /// place `-TID` invalidation marks: those touch the timestamp words
    /// only, and appends land strictly past the committed log size.
    #[inline]
    pub fn for_each_dst_sealed(&self, log_bytes: u64, mut f: impl FnMut(VertexId)) {
        let count = Self::entry_count(log_bytes);
        if count == 0 {
            return;
        }
        let start = self.size - count * EDGE_ENTRY_SIZE;
        debug_assert!(start >= self.data_start());
        // SAFETY: `[start, size)` lies inside the block; entries are 8-byte
        // aligned and their dst word is immutable once committed.
        unsafe {
            let mut p = self.ptr.add(start);
            let end = self.ptr.add(self.size);
            while p < end {
                f((p as *const u64).read());
                p = p.add(EDGE_ENTRY_SIZE);
            }
        }
    }

    /// Scans for the newest entry for `dst` that is visible at `(tre, tid)`.
    ///
    /// Consults the Bloom filter first: a definite miss avoids the scan
    /// entirely (the paper's fast-path for true insertions and upserts).
    pub fn find_edge(
        &self,
        log_bytes: u64,
        dst: VertexId,
        tre: Timestamp,
        tid: TxnId,
    ) -> Option<EdgeEntryRef<'a>> {
        self.find_edge_probed(log_bytes, dst, tre, tid).0
    }

    /// Like [`TelRef::find_edge`], additionally reporting how the lookup was
    /// resolved so callers can maintain scan statistics.
    pub fn find_edge_probed(
        &self,
        log_bytes: u64,
        dst: VertexId,
        tre: Timestamp,
        tid: TxnId,
    ) -> (Option<EdgeEntryRef<'a>>, EdgeProbe) {
        if !self.bloom().may_contain(dst) {
            return (
                None,
                EdgeProbe {
                    bloom_negative: true,
                    entries_scanned: 0,
                },
            );
        }
        let mut scanned = 0usize;
        let hit = self.scan(log_bytes).find(|e| {
            scanned += 1;
            e.dst() == dst && e.visible(tre, tid)
        });
        (
            hit,
            EdgeProbe {
                bloom_negative: false,
                entries_scanned: scanned,
            },
        )
    }

    /// Returns the property bytes referenced by an entry.
    #[inline]
    pub fn properties(&self, entry: &EdgeEntryRef<'a>) -> &'a [u8] {
        let off = entry.prop_offset() as usize;
        let len = entry.prop_len() as usize;
        debug_assert!(off + len <= self.size);
        // SAFETY: property bytes are immutable once the entry is published.
        unsafe { std::slice::from_raw_parts(self.ptr.add(off), len) }
    }

    /// Copies all entries of this TEL (given a committed log/prop size) into
    /// `target`, preserving order and timestamps. Used when upgrading to a
    /// larger block and by compaction. Entries for which `keep` returns
    /// false are skipped.
    ///
    /// Returns the `(log_bytes, prop_bytes)` of the target after the copy.
    /// Panics if the target cannot hold the kept entries (callers size the
    /// target appropriately).
    pub fn copy_into(
        &self,
        log_bytes: u64,
        target: &TelRef<'_>,
        mut keep: impl FnMut(&EdgeEntryRef<'a>) -> bool,
    ) -> (u64, u64) {
        let count = Self::entry_count(log_bytes);
        let mut new_log = 0u64;
        let mut new_prop = 0u64;
        // Copy oldest → newest so relative order (and therefore scan order)
        // is preserved in the target.
        for slot in 0..count {
            let entry = self.entry_at_slot(slot);
            if !keep(&entry) {
                continue;
            }
            let props = self.properties(&entry);
            let (nl, np) = target
                .append(new_log, new_prop, entry.dst(), entry.creation_ts(), props)
                .expect("target TEL too small for copy_into");
            // Preserve the invalidation timestamp exactly.
            let copied = target.entry_at_slot(TelRef::entry_count(new_log));
            copied.set_invalidation_ts(entry.invalidation_ts());
            new_log = nl;
            new_prop = np;
        }
        (new_log, new_prop)
    }
}

/// The production side of the seal protocol: dumb word accessors over the
/// in-place header atomics. Every ordering decision is made by the shared
/// protocol functions in [`crate::seal`], which the loom model tests drive
/// through a facade-atomics twin ([`seal::SealCell`]) — so the discipline
/// exercised under exhaustive interleaving exploration is the same code
/// that runs here.
impl SealWords for TelRef<'_> {
    fn commit_ts_load(&self, order: Ordering) -> Timestamp {
        self.commit_ts_atomic().load(order)
    }
    fn commit_ts_store(&self, ts: Timestamp, order: Ordering) {
        self.commit_ts_atomic().store(ts, order)
    }
    fn log_size_load(&self, order: Ordering) -> u64 {
        self.log_size_atomic().load(order)
    }
    fn log_size_store(&self, bytes: u64, order: Ordering) {
        self.log_size_atomic().store(bytes, order)
    }
    fn inv_count_load(&self, order: Ordering) -> u32 {
        self.inv_count_atomic().load(order)
    }
    fn inv_count_store(&self, count: u32, order: Ordering) {
        self.inv_count_atomic().store(count, order)
    }
    fn inv_count_fetch_add(&self, count: u32, order: Ordering) -> u32 {
        self.inv_count_atomic().fetch_add(count, order)
    }
    fn max_inv_load(&self, order: Ordering) -> Timestamp {
        self.max_inv_atomic().load(order)
    }
    fn max_inv_store(&self, ts: Timestamp, order: Ordering) {
        self.max_inv_atomic().store(ts, order)
    }
    fn max_inv_fetch_max(&self, ts: Timestamp, order: Ordering) -> Timestamp {
        self.max_inv_atomic().fetch_max(ts, order)
    }
}

/// Iterator over TEL entries, newest first. Purely sequential: it touches
/// monotonically increasing addresses inside one block.
pub struct TelScan<'a> {
    tel: TelRef<'a>,
    next_slot: usize,
}

impl<'a> Iterator for TelScan<'a> {
    type Item = EdgeEntryRef<'a>;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.next_slot == 0 {
            return None;
        }
        self.next_slot -= 1;
        Some(self.tel.entry_at_slot(self.next_slot))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.next_slot, Some(self.next_slot))
    }
}

impl ExactSizeIterator for TelScan<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Owns an aligned buffer so TEL logic can be tested without a block
    /// store.
    struct TestBlock {
        buf: Vec<u64>,
        size: usize,
    }

    impl TestBlock {
        fn new(size: usize) -> Self {
            assert_eq!(size % 64, 0);
            Self {
                buf: vec![0u64; size / 8],
                size,
            }
        }
        fn tel(&self) -> TelRef<'_> {
            unsafe { TelRef::from_raw(self.buf.as_ptr() as *mut u8, self.size) }
        }
    }

    fn new_tel(block: &TestBlock, src: VertexId) -> TelRef<'_> {
        let tel = block.tel();
        tel.init(src, 0, 2, 0);
        tel
    }

    #[test]
    fn header_roundtrip() {
        let block = TestBlock::new(256);
        let tel = block.tel();
        tel.init(42, 7, 2, 0xDEAD);
        assert_eq!(tel.src_vertex(), 42);
        assert_eq!(tel.label(), 7);
        assert_eq!(tel.order(), 2);
        assert_eq!(tel.prev_ptr(), 0xDEAD);
        assert_eq!(tel.commit_ts(), 0);
        assert_eq!(tel.log_size(), 0);
        assert_eq!(tel.prop_size(), 0);
        tel.set_commit_ts(5);
        tel.set_log_size(64);
        tel.set_prop_size(10);
        assert_eq!((tel.commit_ts(), tel.log_size(), tel.prop_size()), (5, 64, 10));
    }

    #[test]
    fn entry_visibility_rules_cover_all_timestamp_states() {
        let tre = 10;
        let tid = 7;
        // Committed, never invalidated.
        assert!(entry_visible(5, NULL_TS, tre, tid));
        assert!(entry_visible(5, NULL_TS, tre, 0));
        // Committed after the snapshot.
        assert!(!entry_visible(11, NULL_TS, tre, tid));
        // Committed and invalidated before the snapshot.
        assert!(!entry_visible(5, 9, tre, tid));
        // Invalidated after the snapshot: still visible.
        assert!(entry_visible(5, 12, tre, tid));
        // Pending invalidation by another transaction: still visible.
        assert!(entry_visible(5, -99, tre, tid));
        // Pending invalidation by this very transaction: hidden.
        assert!(!entry_visible(5, -tid, tre, tid));
        // Own uncommitted write: visible, unless self-invalidated.
        assert!(entry_visible(-tid, NULL_TS, tre, tid));
        assert!(!entry_visible(-tid, -tid, tre, tid));
        // Another transaction's uncommitted write: invisible.
        assert!(!entry_visible(-99, NULL_TS, tre, tid));
        assert!(!entry_visible(-99, NULL_TS, tre, 0));
    }

    #[test]
    fn append_then_scan_returns_newest_first() {
        let block = TestBlock::new(512);
        let tel = new_tel(&block, 1);
        let mut log = 0;
        let mut prop = 0;
        for dst in 10..15u64 {
            let (l, p) = tel.append(log, prop, dst, 3, &[]).unwrap();
            log = l;
            prop = p;
        }
        let dsts: Vec<u64> = tel.scan(log).map(|e| e.dst()).collect();
        assert_eq!(dsts, vec![14, 13, 12, 11, 10]);
        assert_eq!(tel.scan(log).len(), 5);
    }

    #[test]
    fn append_reports_full_block() {
        let block = TestBlock::new(128); // header 64 + room for 2 entries
        let tel = new_tel(&block, 1);
        let (l1, p1) = tel.append(0, 0, 1, 1, &[]).unwrap();
        let (l2, p2) = tel.append(l1, p1, 2, 1, &[]).unwrap();
        assert!(tel.append(l2, p2, 3, 1, &[]).is_none(), "block must be full");
    }

    #[test]
    fn properties_are_stored_and_retrieved() {
        let block = TestBlock::new(1024);
        let tel = new_tel(&block, 9);
        let payload = b"hello-world-properties";
        let (log, _prop) = tel.append(0, 0, 77, 4, payload).unwrap();
        let entry = tel.scan(log).next().unwrap();
        assert_eq!(entry.dst(), 77);
        assert_eq!(tel.properties(&entry), payload);
    }

    #[test]
    fn property_space_counts_against_capacity() {
        let block = TestBlock::new(256);
        let tel = new_tel(&block, 1);
        // data region = 256 - 64 = 192 bytes. A 100-byte property plus a
        // 32-byte entry leaves 60 bytes: a second 100-byte property (132
        // total) must not fit.
        let (l, p) = tel.append(0, 0, 1, 1, &[0xAA; 100]).unwrap();
        assert!(tel.append(l, p, 2, 1, &[0xBB; 100]).is_none());
        assert!(tel.append(l, p, 2, 1, &[0xBB; 20]).is_some());
    }

    #[test]
    fn visibility_rules_match_the_paper() {
        // Committed entry, valid interval [5, 9).
        assert!(entry_visible(5, 9, 5, 0));
        assert!(entry_visible(5, 9, 8, 0));
        assert!(!entry_visible(5, 9, 9, 0), "invalidated at 9 → not visible at 9");
        assert!(!entry_visible(5, 9, 4, 0), "not yet created at 4");
        // Not invalidated.
        assert!(entry_visible(5, NULL_TS, 100, 0));
        // Invalidation by an uncommitted transaction keeps it visible.
        assert!(entry_visible(5, -33, 10, 0));
        // Private entry of transaction 33.
        assert!(entry_visible(-33, NULL_TS, 1, 33));
        assert!(!entry_visible(-33, NULL_TS, 1, 44), "other txns cannot see it");
        // A private entry the same transaction already deleted again.
        assert!(!entry_visible(-33, -33, 1, 33));
        // Uncommitted entries are invisible to read-only transactions.
        assert!(!entry_visible(-33, NULL_TS, 1, 0));
    }

    #[test]
    fn find_edge_uses_visibility_and_returns_newest_version() {
        let block = TestBlock::new(1024);
        let tel = new_tel(&block, 1);
        // Version 1 of edge →7 committed at 2, invalidated at 5.
        let (l1, p1) = tel.append(0, 0, 7, 2, b"v1").unwrap();
        tel.entry_at_slot(0).set_invalidation_ts(5);
        // Version 2 committed at 5.
        let (l2, _p2) = tel.append(l1, p1, 7, 5, b"v2").unwrap();

        let old = tel.find_edge(l2, 7, 3, 0).unwrap();
        assert_eq!(tel.properties(&old), b"v1");
        let new = tel.find_edge(l2, 7, 6, 0).unwrap();
        assert_eq!(tel.properties(&new), b"v2");
        assert!(tel.find_edge(l2, 8, 6, 0).is_none(), "absent dst");
        assert!(tel.find_edge(l2, 7, 1, 0).is_none(), "before creation");
    }

    #[test]
    fn copy_into_preserves_order_timestamps_and_properties() {
        let src_block = TestBlock::new(512);
        let tel = new_tel(&src_block, 3);
        let mut log = 0;
        let mut prop = 0;
        for (i, dst) in (20..24u64).enumerate() {
            let (l, p) = tel
                .append(log, prop, dst, (i + 1) as i64, format!("p{dst}").as_bytes())
                .unwrap();
            log = l;
            prop = p;
        }
        // Invalidate dst=21 at ts 3.
        tel.scan(log).find(|e| e.dst() == 21).unwrap().set_invalidation_ts(3);

        let dst_block = TestBlock::new(1024);
        let target = dst_block.tel();
        target.init(3, 0, 4, 0);
        let (new_log, _new_prop) = tel.copy_into(log, &target, |_| true);

        let src_view: Vec<(u64, i64, i64)> = tel
            .scan(log)
            .map(|e| (e.dst(), e.creation_ts(), e.invalidation_ts()))
            .collect();
        let dst_view: Vec<(u64, i64, i64)> = target
            .scan(new_log)
            .map(|e| (e.dst(), e.creation_ts(), e.invalidation_ts()))
            .collect();
        assert_eq!(src_view, dst_view);
        let e = target.scan(new_log).find(|e| e.dst() == 22).unwrap();
        assert_eq!(target.properties(&e), b"p22");
    }

    #[test]
    fn copy_into_can_filter_out_dead_entries() {
        let src_block = TestBlock::new(512);
        let tel = new_tel(&src_block, 3);
        let (l1, p1) = tel.append(0, 0, 1, 1, &[]).unwrap();
        let (l2, _) = tel.append(l1, p1, 2, 2, &[]).unwrap();
        tel.scan(l2).find(|e| e.dst() == 1).unwrap().set_invalidation_ts(2);

        let dst_block = TestBlock::new(512);
        let target = dst_block.tel();
        target.init(3, 0, 3, 0);
        let (new_log, _) = tel.copy_into(l2, &target, |e| e.invalidation_ts() == NULL_TS);
        let kept: Vec<u64> = target.scan(new_log).map(|e| e.dst()).collect();
        assert_eq!(kept, vec![2]);
    }

    #[test]
    fn invalidation_summary_roundtrips_and_accumulates() {
        let block = TestBlock::new(256);
        let tel = new_tel(&block, 1);
        assert_eq!(tel.invalidated_count(), 0);
        assert_eq!(tel.max_invalidation_ts(), 0);
        tel.add_invalidations(0, 99);
        assert_eq!((tel.invalidated_count(), tel.max_invalidation_ts()), (0, 0));
        tel.add_invalidations(2, 7);
        tel.add_invalidations(1, 5);
        assert_eq!(tel.invalidated_count(), 3);
        assert_eq!(tel.max_invalidation_ts(), 7, "max epoch wins");
        tel.set_invalidation_summary(1, 4);
        assert_eq!((tel.invalidated_count(), tel.max_invalidation_ts()), (1, 4));
        tel.init(1, 0, 2, 0);
        assert_eq!((tel.invalidated_count(), tel.max_invalidation_ts()), (0, 0));
    }

    #[test]
    fn sealed_log_requires_clean_summary_and_covered_commit() {
        let block = TestBlock::new(512);
        let tel = new_tel(&block, 1);
        let mut log = 0;
        let mut prop = 0;
        for dst in 0..4u64 {
            let (l, p) = tel.append(log, prop, dst, 3, &[]).unwrap();
            log = l;
            prop = p;
        }
        tel.set_commit_ts(3);
        tel.set_log_size(log);
        assert_eq!(tel.sealed_log(5), Some(log));
        assert_eq!(tel.sealed_log(3), Some(log));
        assert_eq!(tel.sealed_log(2), None, "snapshot predates the commit");
        tel.add_invalidations(1, 3);
        assert_eq!(tel.sealed_log(5), None, "dirty TEL must fall back");
        assert_eq!(tel.sealed_visible_count(5), Some(3), "count stays O(1)");
        assert_eq!(tel.sealed_visible_count(2), None);
    }

    #[test]
    fn sealed_scan_matches_checked_scan_on_clean_logs() {
        let block = TestBlock::new(4096);
        let tel = new_tel(&block, 1);
        let mut log = 0;
        let mut prop = 0;
        for dst in 0..40u64 {
            let (l, p) = tel.append(log, prop, dst, 2, &[]).unwrap();
            log = l;
            prop = p;
        }
        let checked: Vec<u64> = tel
            .scan(log)
            .filter(|e| e.visible(10, 0))
            .map(|e| e.dst())
            .collect();
        let mut sealed = Vec::new();
        tel.for_each_dst_sealed(log, |d| sealed.push(d));
        assert_eq!(sealed, checked, "same order (newest first), same set");
        let mut empty = Vec::new();
        tel.for_each_dst_sealed(0, |d| empty.push(d));
        assert!(empty.is_empty());
    }

    #[test]
    fn find_edge_probed_reports_bloom_negatives_and_scan_effort() {
        let block = TestBlock::new(4096);
        let tel = new_tel(&block, 1);
        let mut log = 0;
        let mut prop = 0;
        for dst in 0..30u64 {
            let (l, p) = tel.append(log, prop, dst, 1, &[]).unwrap();
            log = l;
            prop = p;
        }
        let (hit, probe) = tel.find_edge_probed(log, 29, 5, 0);
        assert!(hit.is_some());
        assert!(!probe.bloom_negative);
        assert_eq!(probe.entries_scanned, 1, "newest entry found first");
        let (miss, probe) = tel.find_edge_probed(log, 0, 5, 0);
        assert!(miss.is_some());
        assert_eq!(probe.entries_scanned, 30, "oldest entry found last");
        // A definite Bloom miss never reads an entry.
        let absent = (1_000..2_000u64)
            .find(|d| !tel.bloom().may_contain(*d))
            .expect("some value must be a definite miss");
        let (none, probe) = tel.find_edge_probed(log, absent, 5, 0);
        assert!(none.is_none());
        assert!(probe.bloom_negative);
        assert_eq!(probe.entries_scanned, 0);
    }

    #[test]
    fn bloom_fast_path_rejects_absent_destinations() {
        let block = TestBlock::new(4096);
        let tel = new_tel(&block, 1);
        let mut log = 0;
        let mut prop = 0;
        for dst in 0..50u64 {
            let (l, p) = tel.append(log, prop, dst, 1, &[]).unwrap();
            log = l;
            prop = p;
        }
        // All inserted destinations must pass the filter.
        for dst in 0..50u64 {
            assert!(tel.bloom().may_contain(dst));
        }
        // find_edge on absent keys mostly short-circuits; correctness-wise it
        // must simply return None.
        for dst in 1_000..1_050u64 {
            assert!(tel.find_edge(log, dst, 10, 0).is_none());
        }
    }
}
