//! # LiveGraph core
//!
//! A from-scratch Rust implementation of **LiveGraph** (Zhu et al., VLDB
//! 2020): a transactional graph storage system whose adjacency-list scans
//! are *purely sequential* — they never require random accesses, even in the
//! presence of concurrent transactions.
//!
//! The two co-designed pieces are:
//!
//! * the **Transactional Edge Log** ([`tel`]): a per-`(vertex, label)`
//!   power-of-two block holding the adjacency list as a log of fixed-size,
//!   cache-aligned entries with embedded creation/invalidation timestamps,
//!   plus a blocked Bloom filter for amortised-O(1) edge insertion;
//! * the **MVCC transaction protocol** (`txn`, commit, epochs):
//!   snapshot isolation driven by two global epoch counters and per-vertex
//!   futex-style locks, with group commit to a write-ahead log and an apply
//!   phase that publishes timestamps in place — no auxiliary version store,
//!   so readers scan a single contiguous block.
//!
//! Surrounding infrastructure — copy-on-write vertex versions, vertex/edge
//! index arrays, compaction/GC, checkpointing and recovery — follows §3–§6
//! of the paper. Storage (block allocation, memory mapping) lives in the
//! `livegraph-storage` crate.
//!
//! ## Quick start
//! ```
//! use livegraph_core::{LiveGraph, LiveGraphOptions};
//!
//! let graph = LiveGraph::open(LiveGraphOptions::in_memory()).unwrap();
//!
//! // Write transaction: create vertices and edges.
//! let mut txn = graph.begin_write().unwrap();
//! let alice = txn.create_vertex(b"alice").unwrap();
//! let bob = txn.create_vertex(b"bob").unwrap();
//! txn.put_edge(alice, 0, bob, b"follows").unwrap();
//! txn.commit().unwrap();
//!
//! // Read transaction: purely sequential adjacency list scan.
//! let read = graph.begin_read().unwrap();
//! for edge in read.edges(alice, 0) {
//!     println!("alice -> {} ({:?})", edge.dst, edge.properties);
//! }
//! ```
//!
//! The workspace-level architecture map — TEL block layout, the commit
//! path, and the crate dependency graph — lives in `docs/ARCHITECTURE.md`
//! at the repository root.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bloom;
mod checkpoint;
mod commit;
mod compaction;
mod epoch;
mod error;
mod graph;
mod index;
mod locks;
pub mod props;
pub mod replication;
pub mod seal;
pub mod sharded;
pub mod sync;
pub mod tel;
pub mod telemetry;
mod txn;
pub mod types;
mod vertex;
pub mod wal;

// Internal types surfaced (hidden) for the model-checked concurrency tests
// in `tests/model_*.rs`, which drive them through the loom shims.
#[doc(hidden)]
pub use commit::GroupClock;
#[doc(hidden)]
pub use epoch::EpochManager;

pub use compaction::CompactionStats;
pub use error::{Error, Result};
pub use props::{PropBuilder, PropError, PropMap, PropValue};
pub use graph::{GraphStats, LiveGraph, LiveGraphOptions, ScanStats};
pub use replication::{install_bootstrap, local_durable_epoch, TailChunk, WalTail};
pub use sharded::{
    ShardedGraph, ShardedGraphOptions, ShardedReadTxn, ShardedStats, ShardedWriteTxn,
};
pub use telemetry::{HistogramSnapshot, MetricsSnapshot, SlowOp, Telemetry};
pub use txn::{Edge, EdgeIter, LabelIter, ReadTxn, VertexIter, WriteTxn, NEIGHBOR_CHUNK};
pub use types::{Label, Timestamp, TxnId, VertexId, DEFAULT_LABEL};
pub use wal::{GroupCommitConfig, SyncMode, WalStats};
