//! Compaction and garbage collection (§6 of the paper).
//!
//! A TEL is implicitly a multi-version log: invalidated entries are useful
//! for historical snapshots but eventually bloat the block. Each worker
//! therefore keeps a *dirty vertex set* of vertices whose blocks it updated;
//! every `compaction_interval` commits (65 536 by default) the worker runs a
//! compaction pass over its own dirty set:
//!
//! * entries invisible to every current and future transaction are dropped
//!   by copying the surviving entries into a fresh (possibly smaller) block;
//! * superseded TEL versions (the `prev` chains left behind by block
//!   upgrades) and superseded vertex versions are reclaimed;
//! * blocks are only returned to the allocator once no active transaction
//!   can still hold a pointer to them — tracked with a *retired list* tagged
//!   with the global read epoch at retirement.
//!
//! Compaction is vertex-wise and holds the ordinary per-vertex lock while it
//! rewrites a block, so it never blocks readers and interferes with at most
//! one writer at a time — unlike an LSM-tree, there is never a multi-file
//! merge.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use livegraph_storage::{BlockPtr, NULL_BLOCK};
use parking_lot::Mutex;

use crate::graph::GraphInner;
use crate::types::{Timestamp, VertexId, NULL_TS};

/// Statistics about compaction activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionStats {
    /// Number of compaction passes executed.
    pub passes: u64,
    /// Vertices whose blocks were rewritten or trimmed.
    pub vertices_compacted: u64,
    /// Blocks returned to the allocator.
    pub blocks_freed: u64,
    /// Dead log entries dropped.
    pub entries_dropped: u64,
    /// Blocks currently awaiting a safe epoch before being freed.
    pub retired_pending: u64,
}

struct RetiredBlock {
    epoch: Timestamp,
    ptr: BlockPtr,
    order: u8,
}

/// Shared compaction bookkeeping.
pub(crate) struct CompactionState {
    dirty: Vec<Mutex<HashSet<VertexId>>>,
    commits: Vec<AtomicU64>,
    retired: Mutex<Vec<RetiredBlock>>,
    passes: AtomicU64,
    vertices_compacted: AtomicU64,
    blocks_freed: AtomicU64,
    entries_dropped: AtomicU64,
}

impl CompactionState {
    pub(crate) fn new(max_workers: usize) -> Self {
        Self {
            dirty: (0..max_workers).map(|_| Mutex::new(HashSet::new())).collect(),
            commits: (0..max_workers).map(|_| AtomicU64::new(0)).collect(),
            retired: Mutex::new(Vec::new()),
            passes: AtomicU64::new(0),
            vertices_compacted: AtomicU64::new(0),
            blocks_freed: AtomicU64::new(0),
            entries_dropped: AtomicU64::new(0),
        }
    }

    /// Records vertices touched by a committed transaction of `worker`.
    pub(crate) fn mark_dirty(&self, worker: usize, vertices: &[VertexId]) {
        if vertices.is_empty() {
            return;
        }
        let mut set = self.dirty[worker].lock();
        set.extend(vertices.iter().copied());
    }

    /// Counts a commit and reports whether the worker is due for a pass.
    pub(crate) fn should_compact(&self, worker: usize, interval: u64) -> bool {
        // ORDERING: Relaxed — per-worker pacing counter, touched only by
        // the owning worker thread; no data is published through it.
        let n = self.commits[worker].fetch_add(1, Ordering::Relaxed) + 1;
        if n >= interval.max(1) {
            self.commits[worker].store(0, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Queues a block for freeing once every transaction active at `epoch`
    /// has finished.
    pub(crate) fn retire(&self, epoch: Timestamp, ptr: BlockPtr, order: u8) {
        self.retired.lock().push(RetiredBlock { epoch, ptr, order });
    }

    /// Snapshot of compaction statistics.
    pub(crate) fn stats(&self) -> CompactionStats {
        CompactionStats {
            // ORDERING: Relaxed — stats snapshot tolerates torn totals.
            passes: self.passes.load(Ordering::Relaxed),
            vertices_compacted: self.vertices_compacted.load(Ordering::Relaxed),
            blocks_freed: self.blocks_freed.load(Ordering::Relaxed),
            entries_dropped: self.entries_dropped.load(Ordering::Relaxed),
            retired_pending: self.retired.lock().len() as u64,
        }
    }
}

/// Runs one compaction pass over `worker`'s dirty vertex set.
pub(crate) fn compact_worker(graph: &GraphInner, worker: usize) {
    let dirty: Vec<VertexId> = {
        let mut set = graph.compaction.dirty[worker].lock();
        set.drain().collect()
    };
    run_pass(graph, worker, dirty);
}

/// Runs a compaction pass over every worker's dirty set (manual trigger).
pub(crate) fn compact_all(graph: &GraphInner) {
    let mut dirty: Vec<VertexId> = Vec::new();
    for set in &graph.compaction.dirty {
        dirty.extend(set.lock().drain());
    }
    dirty.sort_unstable();
    dirty.dedup();
    run_pass(graph, 0, dirty);
}

fn run_pass(graph: &GraphInner, worker: usize, dirty: Vec<VertexId>) {
    let state = &graph.compaction;
    let pass_timer = graph.telemetry.timer();
    // Versions visible at or after `safe` must be kept. The history
    // retention window lowers the bar further so time-travel reads within
    // the window keep working even with no transaction pinning them.
    let retention_floor = graph
        .epochs
        .gre()
        .saturating_sub(graph.options.history_retention.max(0));
    let safe = graph.epochs.min_active_epoch().min(retention_floor);
    for vertex in dirty {
        if !compact_vertex(graph, vertex, safe) {
            // Could not take the lock quickly; try again next pass.
            state.dirty[worker].lock().insert(vertex);
        }
    }
    free_retired(graph);
    // ORDERING: Relaxed — statistics counter, no publication.
    state.passes.fetch_add(1, Ordering::Relaxed);
    graph.telemetry.compaction_pass_seconds.observe_timer(pass_timer);
}

/// Compacts one vertex's blocks. Returns false if the vertex lock could not
/// be acquired promptly.
fn compact_vertex(graph: &GraphInner, vertex: VertexId, safe: Timestamp) -> bool {
    let state = &graph.compaction;
    if !graph.locks.lock_with_timeout(vertex, Duration::from_millis(5)) {
        return false;
    }
    let mut touched = false;

    // ---- Deleted vertices -------------------------------------------------
    // If the newest version is a tombstone that every current and future
    // transaction can see, the whole vertex (version chain, label index and
    // TELs) is reclaimed and its id recycled.
    let head = graph.vertex_index.get(vertex);
    if head != NULL_BLOCK {
        let block = graph.vertex_ref(head);
        let ts = block.creation_ts();
        if block.is_deleted() && ts > 0 && ts <= safe {
            reclaim_deleted_vertex(graph, vertex);
            graph.locks.unlock(vertex);
            // ORDERING: Relaxed — statistics counter, no publication.
            state.vertices_compacted.fetch_add(1, Ordering::Relaxed);
            return true;
        }
    }

    // ---- Adjacency lists -------------------------------------------------
    let li_ptr = graph.edge_index.get(vertex);
    if li_ptr != NULL_BLOCK {
        let li = graph.label_index_ref(li_ptr);
        let labels: Vec<(u16, BlockPtr)> = li.iter().collect();
        for (label, tel_ptr) in labels {
            if tel_ptr == NULL_BLOCK {
                continue;
            }
            let tel = graph.tel_ref_auto(tel_ptr);
            // Retire superseded versions left behind by block upgrades.
            let mut prev = tel.prev_ptr();
            if prev != NULL_BLOCK {
                tel.set_prev_ptr(NULL_BLOCK);
                while prev != NULL_BLOCK {
                    let old = graph.tel_ref_auto(prev);
                    let next = old.prev_ptr();
                    state.retire(graph.epochs.gre(), prev, old.order());
                    prev = next;
                }
                touched = true;
            }
            // Drop entries no current or future transaction can see.
            let log = tel.log_size();
            let dead = tel
                .scan(log)
                .filter(|e| {
                    let inv = e.invalidation_ts();
                    inv != NULL_TS && inv > 0 && inv <= safe
                })
                .count();
            if dead == 0 {
                continue;
            }
            let live_log = log - (dead * crate::tel::EDGE_ENTRY_SIZE) as u64;
            let live_prop: u64 = tel
                .scan(log)
                .filter(|e| {
                    let inv = e.invalidation_ts();
                    !(inv != NULL_TS && inv > 0 && inv <= safe)
                })
                .map(|e| e.prop_len() as u64)
                .sum();
            let order = GraphInner::tel_order_for(live_log.max(64), live_prop);
            let new_ptr = match graph.store.allocate_zeroed(order) {
                Ok(p) => p,
                Err(_) => break, // out of space: skip compaction, not fatal
            };
            let new_tel = graph.tel_ref(new_ptr, order);
            new_tel.init(vertex, label, order, NULL_BLOCK);
            let (new_log, new_prop) = tel.copy_into(log, &new_tel, |e| {
                let inv = e.invalidation_ts();
                !(inv != NULL_TS && inv > 0 && inv <= safe)
            });
            new_tel.set_commit_ts(tel.commit_ts());
            new_tel.set_log_size(new_log);
            new_tel.set_prop_size(new_prop);
            // Rebuild the invalidation summary over the surviving entries:
            // only invalidations still needed by history/time-travel readers
            // (inv > safe) were kept, so a fully compacted TEL re-seals and
            // regains the zero-check scan fast path.
            let mut kept_inv = 0u32;
            let mut kept_max = 0i64;
            for e in new_tel.scan(new_log) {
                let inv = e.invalidation_ts();
                if inv != NULL_TS && inv > 0 {
                    kept_inv += 1;
                    kept_max = kept_max.max(inv);
                }
            }
            new_tel.set_invalidation_summary(kept_inv, kept_max);
            let updated = li.update(label, new_ptr);
            debug_assert!(updated);
            state.retire(graph.epochs.gre(), tel_ptr, tel.order());
            // ORDERING: Relaxed — statistics counter, no publication.
            state
                .entries_dropped
                .fetch_add(dead as u64, Ordering::Relaxed);
            touched = true;
        }
    }

    // ---- Vertex version chain --------------------------------------------
    let head = graph.vertex_index.get(vertex);
    if head != NULL_BLOCK {
        // Find the newest version visible to every active/future transaction;
        // everything older can be reclaimed.
        let mut cut = head;
        loop {
            let block = graph.vertex_ref(cut);
            let ts = block.creation_ts();
            if ts > 0 && ts <= safe {
                let mut prev = block.prev_ptr();
                if prev != NULL_BLOCK {
                    block.set_prev_ptr(NULL_BLOCK);
                    while prev != NULL_BLOCK {
                        let old = graph.vertex_ref(prev);
                        let next = old.prev_ptr();
                        state.retire(graph.epochs.gre(), prev, old.order());
                        prev = next;
                    }
                    touched = true;
                }
                break;
            }
            let prev = block.prev_ptr();
            if prev == NULL_BLOCK {
                break;
            }
            cut = prev;
        }
    }

    graph.locks.unlock(vertex);
    if touched {
        // ORDERING: Relaxed — statistics counter, no publication.
        state.vertices_compacted.fetch_add(1, Ordering::Relaxed);
    }
    true
}

/// Reclaims every block belonging to a deleted vertex whose tombstone is
/// older than the safe epoch: the version chain, the label index block and
/// all TELs (including superseded versions). The vertex id is returned to
/// the free list so a later `create_vertex` can recycle it.
fn reclaim_deleted_vertex(graph: &GraphInner, vertex: VertexId) {
    let state = &graph.compaction;
    let retire_epoch = graph.epochs.gre();

    // Version chain.
    let mut ptr = graph.vertex_index.swap(vertex, NULL_BLOCK);
    while ptr != NULL_BLOCK {
        let block = graph.vertex_ref(ptr);
        debug_assert_eq!(block.vertex_id(), vertex, "version chain crossed vertices");
        let next = block.prev_ptr();
        state.retire(retire_epoch, ptr, block.order());
        ptr = next;
    }

    // Label index block and TELs (with their superseded versions).
    let li_ptr = graph.edge_index.swap(vertex, NULL_BLOCK);
    if li_ptr != NULL_BLOCK {
        let li = graph.label_index_ref(li_ptr);
        for (_, tel_ptr) in li.iter() {
            let mut tel_ptr = tel_ptr;
            while tel_ptr != NULL_BLOCK {
                let tel = graph.tel_ref_auto(tel_ptr);
                let next = tel.prev_ptr();
                state.retire(retire_epoch, tel_ptr, tel.order());
                tel_ptr = next;
            }
        }
        state.retire(retire_epoch, li_ptr, li.order());
    }

    graph.push_free_vertex_id(vertex);
}

/// Frees retired blocks whose retirement epoch is older than every active
/// transaction. Retired blocks are already unreachable through the indexes,
/// so only transactions that were live at retirement time can still hold
/// pointers into them.
fn free_retired(graph: &GraphInner) {
    let min = graph.epochs.min_active_reader_epoch();
    let state = &graph.compaction;
    let mut retired = state.retired.lock();
    let mut kept = Vec::with_capacity(retired.len());
    for block in retired.drain(..) {
        if block.epoch < min {
            graph.store.free(block.ptr, block.order);
            // ORDERING: Relaxed — statistics counter, no publication.
            state.blocks_freed.fetch_add(1, Ordering::Relaxed);
        } else {
            kept.push(block);
        }
    }
    *retired = kept;
}

#[cfg(test)]
mod tests {
    use crate::graph::{LiveGraph, LiveGraphOptions};

    fn graph() -> LiveGraph {
        LiveGraph::open(
            LiveGraphOptions::in_memory()
                .with_capacity(1 << 24)
                .with_max_vertices(1 << 14)
                .with_auto_compaction(false),
        )
        .unwrap()
    }

    #[test]
    fn compaction_reclaims_upgraded_blocks() {
        let g = graph();
        let mut setup = g.begin_write().unwrap();
        let hub = setup.create_vertex(b"").unwrap();
        let mut others = Vec::new();
        for i in 0..300u64 {
            others.push(setup.create_vertex(format!("{i}").as_bytes()).unwrap());
        }
        setup.commit().unwrap();
        for &o in &others {
            let mut txn = g.begin_write().unwrap();
            txn.put_edge(hub, 0, o, b"p").unwrap();
            txn.commit().unwrap();
        }
        let live_before = g.stats().blocks.live_bytes();
        g.compact();
        // Second pass frees blocks retired in the first (no active readers).
        g.compact();
        let stats = g.stats();
        assert!(stats.compaction.blocks_freed > 0, "upgrade chains must be freed");
        assert!(stats.blocks.live_bytes() <= live_before);
        // Data is intact after compaction.
        let r = g.begin_read().unwrap();
        assert_eq!(r.degree(hub, 0), 300);
    }

    #[test]
    fn compaction_drops_dead_entries_and_preserves_live_ones() {
        let g = graph();
        let mut setup = g.begin_write().unwrap();
        let hub = setup.create_vertex(b"").unwrap();
        let mut others = Vec::new();
        for i in 0..50u64 {
            others.push(setup.create_vertex(format!("{i}").as_bytes()).unwrap());
        }
        for &o in &others {
            setup.put_edge(hub, 0, o, b"x").unwrap();
        }
        setup.commit().unwrap();
        // Delete every other edge.
        let mut del = g.begin_write().unwrap();
        for &o in others.iter().step_by(2) {
            del.delete_edge(hub, 0, o).unwrap();
        }
        del.commit().unwrap();

        g.compact();
        g.compact();
        let stats = g.stats();
        assert!(stats.compaction.entries_dropped >= 25, "dead versions must be dropped");
        let r = g.begin_read().unwrap();
        assert_eq!(r.degree(hub, 0), 25);
        for (i, &o) in others.iter().enumerate() {
            let present = r.get_edge(hub, 0, o).is_some();
            assert_eq!(present, i % 2 == 1, "edge {i} visibility after compaction");
        }
    }

    #[test]
    fn compaction_respects_active_readers() {
        let g = graph();
        let mut setup = g.begin_write().unwrap();
        let a = setup.create_vertex(b"").unwrap();
        let b = setup.create_vertex(b"").unwrap();
        setup.put_edge(a, 0, b, b"v1").unwrap();
        setup.commit().unwrap();

        let old_reader = g.begin_read().unwrap();
        let mut del = g.begin_write().unwrap();
        del.delete_edge(a, 0, b).unwrap();
        del.commit().unwrap();

        // The old reader still needs the invalidated version: compaction may
        // run but must not remove what the reader can see.
        g.compact();
        assert_eq!(old_reader.degree(a, 0), 1, "old snapshot must survive compaction");
        drop(old_reader);
        g.compact();
        g.compact();
        let r = g.begin_read().unwrap();
        assert_eq!(r.degree(a, 0), 0);
    }

    #[test]
    fn vertex_version_chains_are_trimmed() {
        let g = graph();
        let mut setup = g.begin_write().unwrap();
        let v = setup.create_vertex(b"v0").unwrap();
        setup.commit().unwrap();
        for i in 1..20u32 {
            let mut txn = g.begin_write().unwrap();
            txn.put_vertex(v, format!("v{i}").as_bytes()).unwrap();
            txn.commit().unwrap();
        }
        g.compact();
        g.compact();
        let stats = g.stats();
        assert!(stats.compaction.blocks_freed > 0);
        let r = g.begin_read().unwrap();
        assert_eq!(r.get_vertex(v), Some(&b"v19"[..]));
    }

    #[test]
    fn auto_compaction_triggers_on_interval() {
        let g = LiveGraph::open(
            LiveGraphOptions::in_memory()
                .with_capacity(1 << 22)
                .with_max_vertices(1 << 12)
                .with_auto_compaction(true)
                .with_compaction_interval(5),
        )
        .unwrap();
        let mut setup = g.begin_write().unwrap();
        let a = setup.create_vertex(b"").unwrap();
        let b = setup.create_vertex(b"").unwrap();
        setup.commit().unwrap();
        for i in 0..30u32 {
            let mut txn = g.begin_write().unwrap();
            txn.put_vertex(a, format!("{i}").as_bytes()).unwrap();
            txn.put_edge(a, 0, b, format!("{i}").as_bytes()).unwrap();
            txn.commit().unwrap();
        }
        assert!(g.stats().compaction.passes > 0, "interval must trigger passes");
    }
}
