//! Core identifier and timestamp types shared across the LiveGraph engine.

/// Vertex identifier. Vertex IDs are allocated contiguously by
/// [`crate::graph::LiveGraph::begin_write`] transactions via an atomic
/// fetch-and-add, exactly as described in §4 of the paper.
pub type VertexId = u64;

/// Edge label. Edges incident to the same vertex are grouped into one
/// Transactional Edge Log per label (§3).
pub type Label = u16;

/// Logical timestamp / epoch.
///
/// * Positive values are commit epochs (the global write epoch `GWE` at the
///   time the owning transaction's commit group persisted).
/// * Negative values are `-TID`: transaction-private, uncommitted writes.
/// * [`NULL_TS`] marks "not invalidated yet".
pub type Timestamp = i64;

/// Transaction identifier: a worker id in the high bits concatenated with a
/// worker-local sequence number (§5). Always strictly positive so `-TID` is
/// a valid negative [`Timestamp`].
pub type TxnId = i64;

/// The "never invalidated" timestamp. Chosen as `i64::MAX` so the visibility
/// predicate `read_epoch < invalidation_ts` holds for any read epoch.
pub const NULL_TS: Timestamp = i64::MAX;

/// The default edge label used by the single-label convenience APIs.
pub const DEFAULT_LABEL: Label = 0;

/// Number of bits of a [`TxnId`] reserved for the worker-local sequence
/// number; the worker id occupies the bits above.
pub const TXN_SEQ_BITS: u32 = 40;

/// Builds a transaction id from a worker slot and a worker-local sequence
/// number.
#[inline]
pub fn make_txn_id(worker: usize, seq: u64) -> TxnId {
    debug_assert!(seq < (1 << TXN_SEQ_BITS));
    (((worker as u64 + 1) << TXN_SEQ_BITS) | seq) as TxnId
}

/// Extracts the worker slot from a transaction id (for diagnostics).
#[inline]
pub fn txn_worker(tid: TxnId) -> usize {
    ((tid as u64) >> TXN_SEQ_BITS) as usize - 1
}

/// Returns true if a stored timestamp denotes a committed value.
#[inline]
pub fn is_committed(ts: Timestamp) -> bool {
    ts > 0 && ts != NULL_TS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_ids_are_positive_and_unique_per_worker() {
        let a = make_txn_id(0, 0);
        let b = make_txn_id(0, 1);
        let c = make_txn_id(1, 0);
        assert!(a > 0 && b > 0 && c > 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn txn_worker_roundtrips() {
        for worker in [0usize, 1, 7, 250] {
            assert_eq!(txn_worker(make_txn_id(worker, 12345)), worker);
        }
    }

    #[test]
    fn committed_predicate() {
        assert!(is_committed(1));
        assert!(is_committed(1 << 40));
        assert!(!is_committed(0));
        assert!(!is_committed(-5));
        assert!(!is_committed(NULL_TS));
    }
}
