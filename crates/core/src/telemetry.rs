//! Live telemetry: a lock-light metrics registry and span timers for the
//! engine's hot paths.
//!
//! The registry holds three metric kinds, all updated with single relaxed
//! atomic operations so the hot paths never take a lock:
//!
//! * **Counters** — monotone event totals (`livegraph_commits_total`, …).
//! * **Gauges** — instantaneous signed values set by whoever owns the
//!   signal (replication lag, apply position, …).
//! * **Histograms** — fixed-bucket log-scale latency/size distributions
//!   with p50/p95/p99/max readout. Buckets are sub-octave (4 per power of
//!   two), so percentile error is bounded at ~19% of the value, which is
//!   plenty for tail-latency dashboards.
//!
//! Everything is built on the [`crate::sync`] facade, so the registry's
//! increment paths run under the loom model checker unchanged (see
//! `crates/core/tests/model_telemetry.rs`).
//!
//! Recording is gated on a process-wide `enabled` switch: span timers
//! return `None` when telemetry is off, so the "stripped" configuration
//! performs no clock reads at all. The `telemetry_overhead` bench pins the
//! enabled-vs-stripped throughput delta within 3% on the default mix.
//!
//! A configurable slow-op log (off by default) records any operation whose
//! total span exceeds the threshold, together with its per-stage
//! breakdown, into a bounded ring buffer and onto stderr.

use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};

/// Number of histogram buckets. Values 0–15 get one bucket each; above
/// that, 4 sub-buckets per octave cover up to 2^40 (≈ 18 minutes in
/// nanoseconds) before clamping into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 160;

/// Sub-buckets per octave above the exact range.
const SUB_BUCKETS: u64 = 4;

/// First octave that uses sub-bucketing (values below `2^FIRST_OCTAVE`
/// are bucketed exactly, one bucket per value).
const FIRST_OCTAVE: u64 = 4;

/// Maps a raw value (nanoseconds for latency histograms, a plain count
/// for size histograms) to its bucket index.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < 1 << FIRST_OCTAVE {
        return value as usize;
    }
    let octave = 63 - u64::from(value.leading_zeros());
    let sub = (value >> (octave - 2)) & (SUB_BUCKETS - 1);
    let ix = (1 << FIRST_OCTAVE) + (octave - FIRST_OCTAVE) * SUB_BUCKETS + sub;
    (ix as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `ix` (the smallest value it can hold).
#[inline]
pub fn bucket_lower_bound(ix: usize) -> u64 {
    let ix = ix as u64;
    if ix < 1 << FIRST_OCTAVE {
        return ix;
    }
    let octave = FIRST_OCTAVE + (ix - (1 << FIRST_OCTAVE)) / SUB_BUCKETS;
    let sub = (ix - (1 << FIRST_OCTAVE)) % SUB_BUCKETS;
    (1u64 << octave) + sub * (1u64 << (octave - 2))
}

/// Representative value reported for bucket `ix`: the midpoint between its
/// lower bound and the next bucket's (so percentile readouts neither
/// systematically under- nor over-estimate).
#[inline]
pub fn bucket_value(ix: usize) -> u64 {
    let lo = bucket_lower_bound(ix);
    if ix + 1 >= HISTOGRAM_BUCKETS {
        return lo;
    }
    let hi = bucket_lower_bound(ix + 1);
    lo + (hi - lo) / 2
}

/// A monotone event counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

/// Registers a counter under `name` (must match `livegraph_[a-z0-9_]+`;
/// enforced by `tools/repolint`'s metric-name rule).
pub fn counter(name: &'static str) -> Counter {
    Counter {
        name,
        value: AtomicU64::new(0),
    }
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — monotone monitoring counter; readers only
        // ever see a (possibly stale) total, nothing is published through
        // it.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — see `Counter::add`.
        self.value.load(Ordering::Relaxed)
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// An instantaneous signed value.
pub struct Gauge {
    name: &'static str,
    // Stored as the i64 bit pattern in a u64 (the facade's AtomicI64 would
    // do equally; u64 keeps the registry uniform).
    value: AtomicU64,
}

/// Registers a gauge under `name` (same naming rule as [`counter`]).
pub fn gauge(name: &'static str) -> Gauge {
    Gauge {
        name,
        value: AtomicU64::new(0),
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        // ORDERING: Relaxed — last-writer-wins monitoring value, no
        // publication.
        self.value.store(v as u64, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // ORDERING: Relaxed — see `Gauge::set`.
        self.value.load(Ordering::Relaxed) as i64
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A fixed-bucket log-scale histogram (see module docs for the bucket
/// layout). `observe` is three relaxed atomic RMWs; no locks, no
/// allocation.
pub struct Histogram {
    name: &'static str,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Registers a histogram under `name`. The name must match
/// `livegraph_[a-z0-9_]+` **and** end in a unit suffix — `_seconds` for
/// latency histograms (recorded in nanoseconds, exposed in seconds),
/// `_bytes` for sizes, `_total` for plain counts — enforced by
/// `tools/repolint`'s metric-name rule.
pub fn histogram(name: &'static str) -> Histogram {
    Histogram {
        name,
        buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        max: AtomicU64::new(0),
    }
}

impl Histogram {
    /// Records one raw observation (nanoseconds for `_seconds` histograms).
    #[inline]
    pub fn observe(&self, value: u64) {
        // ORDERING: Relaxed — monitoring distribution; a reader may see a
        // bucket bumped before count/sum (or vice versa), which the weak
        // snapshot contract of `MetricsSnapshot` permits.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — as above.
        self.count.fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — as above.
        self.sum.fetch_add(value, Ordering::Relaxed);
        // ORDERING: Relaxed — as above.
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records the elapsed time of a span started with
    /// [`Telemetry::timer`], returning it for slow-op breakdowns. A `None`
    /// start (telemetry disabled) is a no-op.
    #[inline]
    pub fn observe_timer(&self, start: Option<Instant>) -> Option<Duration> {
        let elapsed = start?.elapsed();
        self.observe(elapsed.as_nanos() as u64);
        Some(elapsed)
    }

    /// The registered metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Weak snapshot of this histogram (see [`MetricsSnapshot`]).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            // ORDERING: Relaxed — weak monitoring snapshot.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            name: self.name.to_string(),
            // ORDERING: Relaxed — weak monitoring snapshot.
            count: self.count.load(Ordering::Relaxed),
            // ORDERING: Relaxed — weak monitoring snapshot.
            sum: self.sum.load(Ordering::Relaxed),
            // ORDERING: Relaxed — weak monitoring snapshot.
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of one histogram: per-bucket counts (trailing
/// zero buckets trimmed) plus count/sum/max, with percentile readout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Metric name (`livegraph_..._seconds` / `_bytes` / `_total`).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed raw values.
    pub sum: u64,
    /// Largest observed raw value.
    pub max: u64,
    /// Per-bucket observation counts; index into [`bucket_value`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The raw value at quantile `q` (0.0–1.0): the representative value
    /// of the bucket containing the `ceil(q * count)`-th observation.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (ix, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_value(ix);
            }
        }
        bucket_value(self.buckets.len().saturating_sub(1))
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Mean raw value (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One slow-operation record: what ran, how long, and where the time went.
#[derive(Debug, Clone)]
pub struct SlowOp {
    /// Operation kind (`"commit"`, `"scan"`, `"request"`, …).
    pub kind: &'static str,
    /// Total elapsed time.
    pub total: Duration,
    /// Per-stage breakdown, in execution order.
    pub breakdown: Vec<(&'static str, Duration)>,
}

/// Bounded capacity of the in-memory slow-op ring.
const SLOW_LOG_CAPACITY: usize = 128;

/// How many scans each worker skips between latency samples. Scan latency
/// is sampled (1 in 64) because the sealed fast path is nanosecond-scale
/// and two clock reads per scan would dominate it.
const SCAN_SAMPLE_INTERVAL: u64 = 64;

/// Commit span tracing is sampled (1 in 16 per worker): an in-memory
/// commit is microsecond-scale and the full trace takes ~10 clock reads,
/// which would cost double-digit percent throughput if taken on every
/// commit. The commit *counter* stays exact; only the span histograms see
/// the sample. Arming the slow-op log forces tracing on every commit —
/// a sampled trace would miss most threshold crossings.
const COMMIT_SAMPLE_INTERVAL: u64 = 16;

/// Pads the per-worker scan sampling slots to their own cache lines, so
/// sampling never ping-pongs a line between scanning workers.
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

/// The metrics registry: one instance per engine ([`crate::LiveGraph`] or
/// [`crate::sharded::ShardedGraph`] — every shard of a sharded engine
/// shares the same registry, so the exported totals are already flattened
/// across shards, mirroring the `Stats` contract).
///
/// All fields are cheap-to-update atomics; the struct is shared as an
/// `Arc` between the engine, the service layer, and admin endpoints.
pub struct Telemetry {
    enabled: AtomicBool,
    /// Slow-op threshold in nanoseconds; 0 disables the slow-op log.
    slow_threshold: AtomicU64,
    slow_log: Mutex<Vec<SlowOp>>,
    /// Per-worker scan sampling state (see [`SCAN_SAMPLE_INTERVAL`]).
    scan_samplers: Vec<PaddedCounter>,
    /// Per-worker commit-trace sampling state ([`COMMIT_SAMPLE_INTERVAL`]).
    commit_samplers: Vec<PaddedCounter>,
    /// Per-worker commit tally cells; summed with [`Telemetry::commits`]
    /// into `livegraph_commits_total` at snapshot time, so concurrent
    /// committers never contend on one counter cache line.
    commit_counts: Vec<PaddedCounter>,

    /// Committed write transactions.
    pub commits: Counter,
    /// Operations that exceeded the slow-op threshold.
    pub slow_ops: Counter,
    /// Reactor turns where a connection's outbound queue was full and the
    /// server had to stall writes behind backpressure.
    pub reactor_backpressure_stalls: Counter,

    /// Replication: highest epoch the primary has shipped to any replica.
    pub replication_ship_epoch: Gauge,
    /// Replication: highest epoch a replica has durably applied (as acked).
    pub replication_apply_epoch: Gauge,
    /// Replication: primary-to-replica epoch lag.
    pub replication_lag_epochs: Gauge,

    /// Whole commit call, entry to session-consistency return.
    pub commit_seconds: Histogram,
    /// Time a committing transaction spent acquiring vertex locks.
    pub commit_lock_seconds: Histogram,
    /// Group formation + WAL enqueue (entering the persist phase until an
    /// epoch and flush ticket are assigned).
    pub commit_wal_enqueue_seconds: Histogram,
    /// Waiting for the WAL flush (group fsync) covering the commit.
    pub commit_fsync_wait_seconds: Histogram,
    /// Apply phase (publishing versions and converting private stamps).
    pub commit_apply_seconds: Histogram,
    /// Waiting for `GRE` to cover the commit (session consistency).
    pub commit_gre_wait_seconds: Histogram,
    /// Records per formed group-commit batch.
    pub wal_batch_records_total: Histogram,
    /// Sealed (zero-check) scan latency, sampled 1-in-64.
    pub scan_sealed_seconds: Histogram,
    /// Checked (per-entry visibility) scan latency, sampled 1-in-64.
    pub scan_checked_seconds: Histogram,
    /// One compaction pass over a worker's dirty set.
    pub compaction_pass_seconds: Histogram,
    /// One reactor event-loop turn (wake to next wait).
    pub reactor_turn_seconds: Histogram,
    /// Server-side request service time (decode to response enqueue).
    pub request_seconds: Histogram,
}

impl Telemetry {
    /// Creates a registry with scan-sampling slots for `workers` workers.
    /// Recording starts disabled; engines enable it on open.
    pub fn new(workers: usize) -> Arc<Self> {
        Arc::new(Self {
            enabled: AtomicBool::new(false),
            slow_threshold: AtomicU64::new(0),
            slow_log: Mutex::new(Vec::new()),
            scan_samplers: (0..workers).map(|_| PaddedCounter(AtomicU64::new(0))).collect(),
            commit_samplers: (0..workers).map(|_| PaddedCounter(AtomicU64::new(0))).collect(),
            commit_counts: (0..workers).map(|_| PaddedCounter(AtomicU64::new(0))).collect(),
            commits: counter("livegraph_commits_total"),
            slow_ops: counter("livegraph_slow_ops_total"),
            reactor_backpressure_stalls: counter("livegraph_reactor_backpressure_stalls_total"),
            replication_ship_epoch: gauge("livegraph_replication_ship_epoch"),
            replication_apply_epoch: gauge("livegraph_replication_apply_epoch"),
            replication_lag_epochs: gauge("livegraph_replication_lag_epochs"),
            commit_seconds: histogram("livegraph_commit_seconds"),
            commit_lock_seconds: histogram("livegraph_commit_lock_seconds"),
            commit_wal_enqueue_seconds: histogram("livegraph_commit_wal_enqueue_seconds"),
            commit_fsync_wait_seconds: histogram("livegraph_commit_fsync_wait_seconds"),
            commit_apply_seconds: histogram("livegraph_commit_apply_seconds"),
            commit_gre_wait_seconds: histogram("livegraph_commit_gre_wait_seconds"),
            wal_batch_records_total: histogram("livegraph_wal_batch_records_total"),
            scan_sealed_seconds: histogram("livegraph_scan_sealed_seconds"),
            scan_checked_seconds: histogram("livegraph_scan_checked_seconds"),
            compaction_pass_seconds: histogram("livegraph_compaction_pass_seconds"),
            reactor_turn_seconds: histogram("livegraph_reactor_turn_seconds"),
            request_seconds: histogram("livegraph_request_seconds"),
        })
    }

    /// A registry that never records (no scan slots, recording disabled).
    /// Used as the default for directly constructed coordinators (model
    /// tests, unit tests) that are not opened through an engine.
    pub fn disabled() -> Arc<Self> {
        Self::new(0)
    }

    /// Whether recording is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        // ORDERING: Relaxed — monitoring on/off switch; a racing toggle
        // merely gains or loses a few samples.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        // ORDERING: Relaxed — see `Telemetry::enabled`.
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Starts a span timer: `Some(now)` when recording, `None` when
    /// stripped (so the disabled configuration performs no clock reads).
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Starts a *sampled* scan timer for `worker`: `Some(now)` on every
    /// `SCAN_SAMPLE_INTERVAL`-th scan of that worker while recording.
    #[inline]
    pub fn scan_timer(&self, worker: usize) -> Option<Instant> {
        if !self.enabled() {
            return None;
        }
        let slot = self.scan_samplers.get(worker)?;
        // ORDERING: Relaxed — per-worker sampling tick, purely local.
        let tick = slot.0.fetch_add(1, Ordering::Relaxed);
        if tick % SCAN_SAMPLE_INTERVAL == 0 {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Whether a commit beginning on `worker` should take full span
    /// timestamps: every `COMMIT_SAMPLE_INTERVAL`-th commit of that
    /// worker while recording — or *every* commit while the slow-op log
    /// is armed, since a sampled trace would miss most threshold
    /// crossings. Commit counts are always exact; only the commit span
    /// histograms are fed from the sample.
    #[inline]
    pub fn trace_commit(&self, worker: usize) -> bool {
        if !self.enabled() {
            return false;
        }
        // ORDERING: Relaxed — see `set_slow_op_threshold`.
        if self.slow_threshold.load(Ordering::Relaxed) != 0 {
            return true;
        }
        let Some(slot) = self.commit_samplers.get(worker) else {
            return false;
        };
        // ORDERING: Relaxed — per-worker sampling tick, purely local.
        slot.0.fetch_add(1, Ordering::Relaxed) % COMMIT_SAMPLE_INTERVAL == 0
    }

    /// Counts one committed write transaction for `worker`: a padded
    /// per-worker cell (workers without a slot fall back to the shared
    /// counter), so the commit hot path never bounces a counter line
    /// between cores. The total is flattened in [`Telemetry::snapshot`].
    #[inline]
    pub fn inc_commit(&self, worker: usize) {
        match self.commit_counts.get(worker) {
            // ORDERING: Relaxed — statistics tally, no publication.
            Some(slot) => {
                slot.0.fetch_add(1, Ordering::Relaxed);
            }
            None => self.commits.inc(),
        }
    }

    /// Total committed write transactions: the shared counter plus every
    /// per-worker tally cell.
    fn commits_total(&self) -> u64 {
        // ORDERING: Relaxed — see `inc_commit`.
        self.commits.get()
            + self
                .commit_counts
                .iter()
                .map(|c| c.0.load(Ordering::Relaxed))
                .sum::<u64>()
    }

    /// Sets the slow-op threshold; `None` disables the slow-op log.
    pub fn set_slow_op_threshold(&self, threshold: Option<Duration>) {
        let nanos = threshold.map_or(0, |d| d.as_nanos() as u64);
        // ORDERING: Relaxed — monitoring configuration value.
        self.slow_threshold.store(nanos, Ordering::Relaxed);
    }

    /// The current slow-op threshold, if the log is on.
    pub fn slow_op_threshold(&self) -> Option<Duration> {
        // ORDERING: Relaxed — see `set_slow_op_threshold`.
        let nanos = self.slow_threshold.load(Ordering::Relaxed);
        (nanos > 0).then(|| Duration::from_nanos(nanos))
    }

    /// Records `total` against the slow-op log if it exceeds the
    /// threshold; `breakdown` is only materialised past the check. Entries
    /// go to the bounded in-memory ring and to stderr.
    #[inline]
    pub fn maybe_slow_op(
        &self,
        kind: &'static str,
        total: Option<Duration>,
        breakdown: impl FnOnce() -> Vec<(&'static str, Duration)>,
    ) {
        let Some(total) = total else { return };
        // ORDERING: Relaxed — see `set_slow_op_threshold`.
        let threshold = self.slow_threshold.load(Ordering::Relaxed);
        if threshold == 0 || (total.as_nanos() as u64) < threshold {
            return;
        }
        self.record_slow_op(SlowOp {
            kind,
            total,
            breakdown: breakdown(),
        });
    }

    fn record_slow_op(&self, op: SlowOp) {
        self.slow_ops.inc();
        let stages: Vec<String> = op
            .breakdown
            .iter()
            .map(|(name, d)| format!("{name}={:.3}ms", d.as_secs_f64() * 1e3))
            .collect();
        eprintln!(
            "[slow-op] {} took {:.3}ms ({})",
            op.kind,
            op.total.as_secs_f64() * 1e3,
            stages.join(" ")
        );
        let mut log = self.slow_log.lock();
        if log.len() == SLOW_LOG_CAPACITY {
            log.remove(0);
        }
        log.push(op);
    }

    /// The most recent slow ops (oldest first), up to the ring capacity.
    pub fn recent_slow_ops(&self) -> Vec<SlowOp> {
        self.slow_log.lock().clone()
    }

    /// Weak snapshot of every registered metric.
    ///
    /// **Snapshot contract:** fields are read one by one with relaxed
    /// loads while writers proceed, so the snapshot is *not* a consistent
    /// cut — but every individual metric is monotone (counters and
    /// histogram totals never decrease across successive snapshots).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = vec![(self.commits.name().to_string(), self.commits_total())];
        counters.extend(
            [&self.slow_ops, &self.reactor_backpressure_stalls]
                .iter()
                .map(|c| (c.name().to_string(), c.get())),
        );
        let gauges = [
            &self.replication_ship_epoch,
            &self.replication_apply_epoch,
            &self.replication_lag_epochs,
        ]
        .iter()
        .map(|g| (g.name().to_string(), g.get()))
        .collect();
        let histograms = [
            &self.commit_seconds,
            &self.commit_lock_seconds,
            &self.commit_wal_enqueue_seconds,
            &self.commit_fsync_wait_seconds,
            &self.commit_apply_seconds,
            &self.commit_gre_wait_seconds,
            &self.wal_batch_records_total,
            &self.scan_sealed_seconds,
            &self.scan_checked_seconds,
            &self.compaction_pass_seconds,
            &self.reactor_turn_seconds,
            &self.request_seconds,
        ]
        .iter()
        .map(|h| h.snapshot())
        .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time dump of a [`Telemetry`] registry, optionally extended
/// with engine-derived counters/gauges (epochs, WAL totals, scan totals)
/// by [`crate::LiveGraph::metrics`].
///
/// Carries the same weak-snapshot contract as [`Telemetry::snapshot`]:
/// individually monotone fields, no cross-field consistency.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` pairs, monotone.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, instantaneous.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Appends a derived counter.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
    }

    /// Appends a derived gauge.
    pub fn push_gauge(&mut self, name: &str, value: i64) {
        self.gauges.push((name.to_string(), value));
    }

    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_lower_bounds_invert_bucket_index() {
        // Every bucket's lower bound maps back into that bucket, and the
        // value just below it maps into the previous one.
        for ix in 0..HISTOGRAM_BUCKETS - 1 {
            let lo = bucket_lower_bound(ix);
            assert_eq!(bucket_index(lo), ix, "lower bound of bucket {ix}");
            if lo > 0 {
                assert_eq!(bucket_index(lo - 1), ix - 1, "below bucket {ix}");
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_log_scale() {
        let mut prev = 0;
        for shift in 0..50 {
            let v = 1u64 << shift;
            let ix = bucket_index(v);
            assert!(ix >= prev, "monotone at 2^{shift}");
            prev = ix;
        }
        // Sub-octave resolution: 1024 and 1280 (1.25x) land in different
        // buckets; 1024 and 1025 land in the same one.
        assert_ne!(bucket_index(1024), bucket_index(1280));
        assert_eq!(bucket_index(1024), bucket_index(1025));
        // Relative error of the bucket representative is bounded (~19%).
        for &v in &[100u64, 999, 5_000, 123_456, 10_000_000] {
            let rep = bucket_value(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.20, "value {v} rep {rep} err {err}");
        }
    }

    #[test]
    fn huge_values_clamp_into_the_last_bucket() {
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let h = histogram("livegraph_test_seconds");
        h.observe(u64::MAX);
        assert_eq!(h.snapshot().max, u64::MAX);
    }

    #[test]
    fn percentiles_read_out_known_distributions() {
        let h = histogram("livegraph_test_seconds");
        // 100 observations: 1..=100 microseconds in nanos.
        for i in 1..=100u64 {
            h.observe(i * 1_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 100_000);
        // p50 ≈ 50µs, p99 ≈ 99µs, within one bucket width (25%).
        let p50 = snap.p50() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.25, "p50 {p50}");
        let p99 = snap.p99() as f64;
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.25, "p99 {p99}");
        assert!(snap.p95() <= snap.p99());
        assert!(snap.p50() <= snap.p95());
        // Mean of 1..=100µs is 50.5µs exactly (sums are not bucketed).
        assert!((snap.mean() - 50_500.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = histogram("livegraph_test_seconds");
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.buckets.is_empty(), "trailing zeros trimmed");
    }

    #[test]
    fn single_observation_is_every_percentile() {
        let h = histogram("livegraph_test_seconds");
        h.observe(7_777);
        let snap = h.snapshot();
        let rep = bucket_value(bucket_index(7_777));
        assert_eq!(snap.percentile(0.0), rep);
        assert_eq!(snap.p50(), rep);
        assert_eq!(snap.p99(), rep);
        assert_eq!(snap.percentile(1.0), rep);
    }

    #[test]
    fn timer_is_none_when_stripped() {
        let tel = Telemetry::new(2);
        assert!(tel.timer().is_none());
        assert!(tel.scan_timer(0).is_none());
        tel.set_enabled(true);
        assert!(tel.timer().is_some());
        // First scan of a worker is always sampled.
        assert!(tel.scan_timer(0).is_some());
        assert!(tel.scan_timer(0).is_none(), "second scan is skipped");
        // Out-of-range worker never panics.
        assert!(tel.scan_timer(99).is_none());
    }

    #[test]
    fn slow_op_log_respects_threshold_and_capacity() {
        let tel = Telemetry::new(1);
        tel.set_enabled(true);
        // Off by default: nothing recorded.
        tel.maybe_slow_op("commit", Some(Duration::from_secs(1)), Vec::new);
        assert_eq!(tel.recent_slow_ops().len(), 0);
        tel.set_slow_op_threshold(Some(Duration::from_millis(10)));
        tel.maybe_slow_op("commit", Some(Duration::from_millis(5)), Vec::new);
        assert_eq!(tel.recent_slow_ops().len(), 0, "below threshold");
        for _ in 0..SLOW_LOG_CAPACITY + 10 {
            tel.maybe_slow_op("commit", Some(Duration::from_millis(20)), || {
                vec![("persist", Duration::from_millis(15))]
            });
        }
        let ops = tel.recent_slow_ops();
        assert_eq!(ops.len(), SLOW_LOG_CAPACITY, "ring is bounded");
        assert_eq!(tel.slow_ops.get(), SLOW_LOG_CAPACITY as u64 + 10);
        assert_eq!(ops[0].kind, "commit");
        assert_eq!(ops[0].breakdown[0].0, "persist");
    }

    #[test]
    fn snapshot_covers_every_registered_metric() {
        let tel = Telemetry::new(1);
        tel.set_enabled(true);
        tel.commits.inc();
        tel.replication_lag_epochs.set(-3);
        tel.commit_seconds.observe(1_000);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("livegraph_commits_total"), Some(1));
        assert_eq!(snap.gauge("livegraph_replication_lag_epochs"), Some(-3));
        let h = snap.histogram("livegraph_commit_seconds").unwrap();
        assert_eq!(h.count, 1);
        // Every name obeys the repolint naming rule.
        let ok = |n: &str| {
            n.starts_with("livegraph_")
                && n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        };
        for (n, _) in &snap.counters {
            assert!(ok(n), "counter {n}");
        }
        for (n, _) in &snap.gauges {
            assert!(ok(n), "gauge {n}");
        }
        for h in &snap.histograms {
            assert!(ok(&h.name), "histogram {}", h.name);
            assert!(
                h.name.ends_with("_seconds")
                    || h.name.ends_with("_bytes")
                    || h.name.ends_with("_total"),
                "histogram {} lacks a unit suffix",
                h.name
            );
        }
    }
}
