//! Vertex and edge index arrays plus per-vertex label index blocks.
//!
//! §3 of the paper: blocks are reached through two index arrays — a *vertex
//! index* (vertex id → newest vertex block) and an *edge index* (vertex id →
//! label index block → TEL per label). Vertex ids grow contiguously, so both
//! indexes are flat arrays of pointers. We reserve the full capacity as an
//! anonymous mapping (pages are only committed on first touch), which gives
//! us stable `AtomicU64` slots without any resizing or locking on the read
//! path — the same property the paper gets from its extendable arrays.

use std::sync::atomic::{AtomicU64, Ordering};

use livegraph_storage::{BlockPtr, Region};

use crate::error::Result;
use crate::types::{Label, VertexId};

/// A flat array of atomic block pointers indexed by vertex id.
pub struct IndexArray {
    region: Region,
    capacity: usize,
}

impl IndexArray {
    /// Reserves an index with room for `capacity` vertices.
    pub fn new(capacity: usize) -> Result<Self> {
        let region = Region::anonymous(capacity * 8)?;
        Ok(Self { region, capacity })
    }

    /// Number of addressable slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn slot(&self, vertex: VertexId) -> &AtomicU64 {
        debug_assert!((vertex as usize) < self.capacity, "vertex id out of range");
        // SAFETY: in range; anonymous mappings are zero-initialised, and a
        // zero slot is NULL_BLOCK.
        unsafe { &*(self.region.as_ptr().add(vertex as usize * 8) as *const AtomicU64) }
    }

    /// Loads the pointer for `vertex` (`NULL_BLOCK` if unset).
    #[inline]
    pub fn get(&self, vertex: VertexId) -> BlockPtr {
        // ORDERING: Acquire pairs with the Release in `set`/`swap`, so the
        // block a loaded pointer leads to is fully initialised.
        self.slot(vertex).load(Ordering::Acquire)
    }

    /// Atomically publishes a new pointer for `vertex`.
    #[inline]
    pub fn set(&self, vertex: VertexId, ptr: BlockPtr) {
        // ORDERING: Release — the block's contents are written before its
        // pointer becomes reachable; pairs with the Acquire in `get`.
        self.slot(vertex).store(ptr, Ordering::Release);
    }

    /// Atomically swaps the pointer, returning the previous value.
    #[inline]
    pub fn swap(&self, vertex: VertexId, ptr: BlockPtr) -> BlockPtr {
        // ORDERING: AcqRel — publishes the new block (Release) and takes
        // ownership of the old one's contents (Acquire).
        self.slot(vertex).swap(ptr, Ordering::AcqRel)
    }
}

/// Layout of a label index block: a small array of `(label, tel_ptr)` pairs.
///
/// The paper interposes "label index blocks" between the edge index and the
/// TELs so that edges with different labels can be scanned separately. Most
/// vertices only ever use one or two labels, so the block starts at 64 bytes
/// and doubles when full, exactly like a TEL.
pub struct LabelIndexRef<'a> {
    ptr: *mut u8,
    size: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

/// Size of the label index block header.
pub const LABEL_INDEX_HEADER: usize = 16;
/// Size of one label index slot.
pub const LABEL_SLOT_SIZE: usize = 16;

impl<'a> LabelIndexRef<'a> {
    /// Wraps raw block memory as a label index block.
    ///
    /// # Safety
    /// `ptr` must point to `size` valid bytes, 8-byte aligned, for `'a`.
    #[inline]
    pub unsafe fn from_raw(ptr: *mut u8, size: usize) -> Self {
        debug_assert!(size >= LABEL_INDEX_HEADER + LABEL_SLOT_SIZE);
        Self {
            ptr,
            size,
            _marker: std::marker::PhantomData,
        }
    }

    /// Initialises an empty label index block (count = 0).
    pub fn init(&self, order: u8) {
        // ORDERING: Release — belt-and-braces; the block only becomes
        // reachable via a Release index publication after init.
        self.count_atomic().store(0, Ordering::Release);
        // SAFETY: in-bounds header byte; the block is still private.
        unsafe { self.ptr.add(8).write(order) };
    }

    #[inline]
    fn count_atomic(&self) -> &AtomicU64 {
        // SAFETY: header word at offset 0, 8-aligned.
        unsafe { &*(self.ptr as *const AtomicU64) }
    }

    /// Number of `(label, tel)` pairs stored.
    #[inline]
    pub fn count(&self) -> usize {
        // ORDERING: Acquire pairs with the Release in `push`, so slots
        // below the observed count are fully written.
        self.count_atomic().load(Ordering::Acquire) as usize
    }

    /// Size-class order of this block.
    #[inline]
    pub fn order(&self) -> u8 {
        // SAFETY: in-bounds header byte, written once in `init` before the
        // block became reachable and immutable afterwards.
        unsafe { self.ptr.add(8).read() }
    }

    /// Maximum number of slots this block can hold.
    #[inline]
    pub fn slot_capacity(&self) -> usize {
        (self.size - LABEL_INDEX_HEADER) / LABEL_SLOT_SIZE
    }

    #[inline]
    fn slot_ptr(&self, idx: usize) -> *mut u8 {
        debug_assert!(idx < self.slot_capacity());
        // SAFETY: bounds asserted above.
        unsafe { self.ptr.add(LABEL_INDEX_HEADER + idx * LABEL_SLOT_SIZE) }
    }

    /// Returns the label stored in slot `idx`.
    #[inline]
    pub fn label_at(&self, idx: usize) -> Label {
        // SAFETY: slot `idx` is below `count`, so the label word was fully
        // written before the count's Release publication.
        unsafe { (self.slot_ptr(idx) as *const u64).read() as Label }
    }

    /// Returns the TEL pointer stored in slot `idx`.
    #[inline]
    pub fn tel_at(&self, idx: usize) -> BlockPtr {
        // SAFETY: second word of the slot, 8-aligned.
        // ORDERING: Acquire pairs with the Release in `update`, so the
        // replacement TEL's contents are visible through the new pointer.
        unsafe { (*(self.slot_ptr(idx).add(8) as *const AtomicU64)).load(Ordering::Acquire) }
    }

    /// Looks up the TEL pointer for a label.
    pub fn find(&self, label: Label) -> Option<BlockPtr> {
        let n = self.count();
        (0..n).find(|&i| self.label_at(i) == label).map(|i| self.tel_at(i))
    }

    /// Updates the TEL pointer of an existing label (e.g. after a TEL
    /// upgrade or compaction). Returns false if the label is absent.
    pub fn update(&self, label: Label, tel: BlockPtr) -> bool {
        let n = self.count();
        for i in 0..n {
            if self.label_at(i) == label {
                // SAFETY: slot i exists; pointer word is atomically updated
                // so concurrent readers see either the old or the new TEL.
                // ORDERING: Release — the new TEL's contents are written
                // before the pointer swing; pairs with `tel_at`'s Acquire.
                unsafe {
                    (*(self.slot_ptr(i).add(8) as *const AtomicU64)).store(tel, Ordering::Release)
                };
                return true;
            }
        }
        false
    }

    /// Appends a new `(label, tel)` pair. Returns `false` if the block is
    /// full and must be upgraded. Callers serialise appends per vertex via
    /// the vertex lock; the count is published last so concurrent readers
    /// never observe a half-written slot.
    pub fn push(&self, label: Label, tel: BlockPtr) -> bool {
        let n = self.count();
        if n >= self.slot_capacity() {
            return false;
        }
        // SAFETY: slot `n` is in capacity and above the published count, so
        // no reader can observe it until the count store below.
        unsafe {
            (self.slot_ptr(n) as *mut u64).write(label as u64);
            (self.slot_ptr(n).add(8) as *mut u64).write(tel);
        }
        // ORDERING: Release publishes the slot writes above; pairs with
        // the Acquire in `count`.
        self.count_atomic().store(n as u64 + 1, Ordering::Release);
        true
    }

    /// Iterates all `(label, tel)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Label, BlockPtr)> + '_ {
        (0..self.count()).map(move |i| (self.label_at(i), self.tel_at(i)))
    }

    /// Copies all pairs into `target` (used when upgrading the block).
    pub fn copy_into(&self, target: &LabelIndexRef<'_>) {
        for (label, tel) in self.iter() {
            let ok = target.push(label, tel);
            debug_assert!(ok, "target label index too small");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_storage::NULL_BLOCK;

    #[test]
    fn index_array_starts_null_and_roundtrips() {
        let idx = IndexArray::new(1024).unwrap();
        assert_eq!(idx.get(0), NULL_BLOCK);
        assert_eq!(idx.get(1023), NULL_BLOCK);
        idx.set(10, 0x40);
        assert_eq!(idx.get(10), 0x40);
        assert_eq!(idx.swap(10, 0x80), 0x40);
        assert_eq!(idx.get(10), 0x80);
        assert_eq!(idx.capacity(), 1024);
    }

    struct TestBlock {
        buf: Vec<u64>,
        size: usize,
    }
    impl TestBlock {
        fn new(size: usize) -> Self {
            Self {
                buf: vec![0u64; size / 8],
                size,
            }
        }
        fn view(&self) -> LabelIndexRef<'_> {
            unsafe { LabelIndexRef::from_raw(self.buf.as_ptr() as *mut u8, self.size) }
        }
    }

    #[test]
    fn label_index_push_find_update() {
        let block = TestBlock::new(64);
        let li = block.view();
        li.init(0);
        assert_eq!(li.slot_capacity(), 3);
        assert!(li.push(0, 0x100));
        assert!(li.push(5, 0x200));
        assert_eq!(li.find(0), Some(0x100));
        assert_eq!(li.find(5), Some(0x200));
        assert_eq!(li.find(9), None);
        assert!(li.update(5, 0x300));
        assert_eq!(li.find(5), Some(0x300));
        assert!(!li.update(9, 0x400));
    }

    #[test]
    fn label_index_reports_full() {
        let block = TestBlock::new(64);
        let li = block.view();
        li.init(0);
        assert!(li.push(0, 1));
        assert!(li.push(1, 2));
        assert!(li.push(2, 3));
        assert!(!li.push(3, 4), "capacity of a 64-byte block is 3 labels");
    }

    #[test]
    fn label_index_copy_into_preserves_pairs() {
        let small = TestBlock::new(64);
        let li = small.view();
        li.init(0);
        li.push(1, 11);
        li.push(2, 22);
        let big = TestBlock::new(128);
        let target = big.view();
        target.init(1);
        li.copy_into(&target);
        assert_eq!(target.count(), 2);
        assert_eq!(target.find(1), Some(11));
        assert_eq!(target.find(2), Some(22));
    }
}
