//! Checkpointing and recovery (§6 of the paper).
//!
//! A checkpoint persists the latest consistent snapshot (taken through a
//! read-only transaction, so concurrent writers are unaffected) and prunes
//! every WAL record already covered by the snapshot. Recovery loads the most
//! recent checkpoint and replays the remaining committed WAL records through
//! the regular write path.
//!
//! The checkpoint file reuses the WAL frame format: it is simply a sequence
//! of [`WalRecord`]s, all tagged with the snapshot epoch, containing one
//! `CreateVertex` per visible vertex and one `PutEdge` per visible edge.
//! This keeps one serialisation format for everything that crosses a crash
//! boundary.

use std::path::{Path, PathBuf};

use crate::error::{Error, Result};
use crate::graph::GraphInner;
use crate::types::{Timestamp, VertexId};
use crate::wal::{read_wal, SyncMode, WalOp, WalRecord, WalWriter};

/// Number of operations bundled per checkpoint record / recovery batch.
const CHECKPOINT_BATCH: usize = 4096;

pub(crate) fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.dat")
}

pub(crate) fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

/// Writes a checkpoint of the latest committed snapshot and prunes the WAL.
/// Returns the snapshot epoch (which becomes the WAL prune floor).
pub(crate) fn write_checkpoint(graph: &GraphInner) -> Result<Timestamp> {
    let dir = graph
        .options
        .data_dir
        .clone()
        .ok_or_else(|| Error::Corruption("checkpoint requires a data directory".into()))?;

    // Register as a reader so compaction keeps everything we are dumping.
    let worker = graph.worker_slot()?;
    let snapshot_epoch = graph.epochs.begin_read(worker);
    let result = dump_snapshot(graph, &dir, snapshot_epoch);
    graph.epochs.finish(worker);
    result?;

    // Prune WAL records the checkpoint already covers. Holding the WAL lock
    // keeps group-commit leaders out while the file is rewritten, and the
    // writer is re-pointed at the replacement file so later commits are not
    // lost in the unlinked old inode.
    graph.commit.with_wal_locked(|wal| -> Result<()> {
        if let Some(wal) = wal {
            let path = wal_path(&dir);
            let remaining: Vec<WalRecord> = if path.exists() {
                read_wal(&path)?
                    .into_iter()
                    .filter(|r| r.epoch > snapshot_epoch)
                    .collect()
            } else {
                Vec::new()
            };
            wal.rewrite(&remaining)?;
            // Publish the floor while the WAL lock pins the file contents,
            // so a tail can never observe a pruned log with a stale floor.
            // ORDERING: AcqRel — pairs with the Acquire in
            // `wal_prune_floor`, publishing the on-disk checkpoint state.
            graph
                .prune_floor
                .fetch_max(snapshot_epoch, std::sync::atomic::Ordering::AcqRel);
        }
        Ok(())
    })?;
    Ok(snapshot_epoch)
}

fn dump_snapshot(graph: &GraphInner, dir: &Path, epoch: Timestamp) -> Result<()> {
    let tmp = dir.join("checkpoint.tmp");
    let _ = std::fs::remove_file(&tmp);
    let mut writer = WalWriter::open(&tmp, SyncMode::Fsync)?;
    let mut batch: Vec<WalOp> = Vec::with_capacity(CHECKPOINT_BATCH);
    let flush = |batch: &mut Vec<WalOp>, writer: &mut WalWriter| -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        writer.append_group(&[WalRecord {
            epoch,
            ops: std::mem::take(batch),
        }])?;
        Ok(())
    };

    // ORDERING: Acquire — pairs with the AcqRel id-allocation RMWs.
    let vertex_count = graph.next_vertex.load(std::sync::atomic::Ordering::Acquire);
    for vertex in 0..vertex_count {
        if let Some(props) = graph.read_vertex_version(vertex, epoch, 0) {
            batch.push(WalOp::CreateVertex {
                vertex,
                properties: props.to_vec(),
            });
        } else if graph.vertex_deleted_at(vertex, epoch) {
            // Preserve the deletion (and the id allocation) across recovery.
            batch.push(WalOp::DeleteVertex { vertex });
        }
        // Dump each label's visible adjacency list.
        let li_ptr = graph.edge_index.get(vertex);
        if li_ptr != livegraph_storage::NULL_BLOCK {
            let li = graph.label_index_ref(li_ptr);
            for (label, tel_ptr) in li.iter() {
                if tel_ptr == livegraph_storage::NULL_BLOCK {
                    continue;
                }
                let tel = graph.tel_ref_auto(tel_ptr);
                let log = tel.log_size();
                // The scan yields newest-first; recovery re-*appends* in
                // emitted order, so emit oldest-first to reconstruct the
                // TEL with its original recency order.
                let visible: Vec<_> = tel
                    .scan(log)
                    .filter(|entry| entry.visible(epoch, 0))
                    .collect();
                for entry in visible.into_iter().rev() {
                    batch.push(WalOp::PutEdge {
                        src: vertex,
                        label,
                        dst: entry.dst(),
                        properties: tel.properties(&entry).to_vec(),
                    });
                    if batch.len() >= CHECKPOINT_BATCH {
                        flush(&mut batch, &mut writer)?;
                    }
                }
            }
        }
        if batch.len() >= CHECKPOINT_BATCH {
            flush(&mut batch, &mut writer)?;
        }
    }
    // Record the total vertex-id space even if trailing ids carry no data,
    // so recovery restores the id allocator exactly.
    if vertex_count > 0 {
        let last = vertex_count - 1;
        match graph.read_vertex_version(last, epoch, 0) {
            Some(props) => batch.push(WalOp::PutVertex {
                vertex: last,
                properties: props.to_vec(),
            }),
            // A deleted or never-committed trailing id: reserve the id space
            // without resurrecting the vertex.
            None => batch.push(WalOp::DeleteVertex { vertex: last }),
        }
    }
    flush(&mut batch, &mut writer)?;
    std::fs::rename(&tmp, checkpoint_path(dir))?;
    Ok(())
}

/// Recovers graph state from an existing checkpoint and WAL, if present.
/// Called once from [`crate::LiveGraph::open`] before the graph is shared.
pub(crate) fn recover(graph: &GraphInner) -> Result<()> {
    let Some(dir) = graph.options.data_dir.clone() else {
        return Ok(());
    };
    // ORDERING: Release stores bracket replay; pair with the Acquire load
    // in the commit path, which skips WAL logging while replay runs.
    graph
        .recovery_mode
        .store(true, std::sync::atomic::Ordering::Release);
    let result = recover_inner(graph, &dir);
    // ORDERING: Release — replayed state precedes the flag clear.
    graph
        .recovery_mode
        .store(false, std::sync::atomic::Ordering::Release);
    result
}

fn recover_inner(graph: &GraphInner, dir: &Path) -> Result<()> {
    let mut max_epoch: Timestamp = 0;
    let cp = checkpoint_path(dir);
    let mut checkpoint_epoch: Timestamp = 0;
    if cp.exists() {
        let records = read_wal(&cp)?;
        for record in &records {
            checkpoint_epoch = checkpoint_epoch.max(record.epoch);
        }
        for record in records {
            apply_record(graph, &record)?;
        }
        max_epoch = max_epoch.max(checkpoint_epoch);
    }
    let wal = wal_path(dir);
    if wal.exists() {
        for record in read_wal(&wal)? {
            if record.epoch > checkpoint_epoch {
                apply_record(graph, &record)?;
                max_epoch = max_epoch.max(record.epoch);
            }
        }
    }
    if max_epoch > 0 {
        graph.epochs.reset_to(max_epoch);
    }
    // Epochs at or below the checkpoint are not in the WAL; replication
    // resume requests below this floor need a fresh bootstrap.
    // ORDERING: AcqRel — pairs with the Acquire in `wal_prune_floor`.
    graph
        .prune_floor
        .fetch_max(checkpoint_epoch, std::sync::atomic::Ordering::AcqRel);
    Ok(())
}

/// Replays one WAL/checkpoint record through the normal write path.
/// Recovery mode (set by [`recover`]) suppresses re-logging to the WAL.
fn apply_record(graph: &GraphInner, record: &WalRecord) -> Result<()> {
    replay_ops(graph, &record.ops)
}

fn replay_ops(graph: &GraphInner, ops: &[WalOp]) -> Result<()> {
    for chunk in ops.chunks(CHECKPOINT_BATCH) {
        let mut txn = crate::txn::WriteTxn::begin(graph)?;
        apply_ops_in(graph, &mut txn, chunk)?;
        txn.commit()?;
    }
    Ok(())
}

/// Re-executes logged operations inside an already-open transaction.
/// Shared between recovery replay (which chunks ops across transactions for
/// memory locality) and replication apply (which must keep all of one
/// epoch's operations in a single transaction so the replica consumes
/// exactly one epoch per shipped epoch).
pub(crate) fn apply_ops_in(
    graph: &GraphInner,
    txn: &mut crate::txn::WriteTxn<'_>,
    ops: &[WalOp],
) -> Result<()> {
    for op in ops {
        match op {
            WalOp::CreateVertex { vertex, properties } => {
                txn.create_vertex_with_id(*vertex, properties)?;
            }
            WalOp::PutVertex { vertex, properties } => {
                ensure_vertex(graph, txn, *vertex)?;
                txn.put_vertex(*vertex, properties)?;
            }
            WalOp::PutEdge {
                src,
                label,
                dst,
                properties,
            } => {
                ensure_vertex(graph, txn, *src)?;
                ensure_vertex(graph, txn, *dst)?;
                txn.put_edge(*src, *label, *dst, properties)?;
            }
            WalOp::DeleteEdge { src, label, dst } => {
                if graph.vertex_exists(*src) {
                    txn.delete_edge(*src, *label, *dst)?;
                }
            }
            WalOp::DeleteVertex { vertex } => {
                ensure_vertex(graph, txn, *vertex)?;
                txn.delete_vertex(*vertex)?;
            }
        }
    }
    Ok(())
}

/// Makes sure a vertex id referenced during replay is allocated (ids must be
/// preserved exactly across recovery).
fn ensure_vertex(
    graph: &GraphInner,
    txn: &mut crate::txn::WriteTxn<'_>,
    vertex: VertexId,
) -> Result<()> {
    if !graph.vertex_exists(vertex) {
        txn.reserve_vertex_id(vertex);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::graph::{LiveGraph, LiveGraphOptions};
    use crate::wal::SyncMode;

    fn durable_options(dir: &std::path::Path) -> LiveGraphOptions {
        LiveGraphOptions::durable(dir)
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 14)
            .with_sync_mode(SyncMode::NoSync)
    }

    #[test]
    fn wal_replay_restores_graph_after_restart() {
        let dir = tempfile::tempdir().unwrap();
        let (a, b, c);
        {
            let g = LiveGraph::open(durable_options(dir.path())).unwrap();
            let mut txn = g.begin_write().unwrap();
            a = txn.create_vertex(b"alice").unwrap();
            b = txn.create_vertex(b"bob").unwrap();
            c = txn.create_vertex(b"carol").unwrap();
            txn.put_edge(a, 0, b, b"ab").unwrap();
            txn.put_edge(a, 0, c, b"ac").unwrap();
            txn.commit().unwrap();
            let mut txn = g.begin_write().unwrap();
            txn.delete_edge(a, 0, b).unwrap();
            txn.put_vertex(c, b"carol2").unwrap();
            txn.commit().unwrap();
        }
        let g = LiveGraph::open(durable_options(dir.path())).unwrap();
        let r = g.begin_read().unwrap();
        assert_eq!(r.get_vertex(a), Some(&b"alice"[..]));
        assert_eq!(r.get_vertex(c), Some(&b"carol2"[..]));
        assert_eq!(r.degree(a, 0), 1);
        assert_eq!(r.get_edge(a, 0, c), Some(&b"ac"[..]));
        assert_eq!(r.get_edge(a, 0, b), None, "deleted edge must stay deleted");
        assert_eq!(g.vertex_count(), 3, "vertex id space restored");
    }

    /// Adjacency lists must come back from a checkpoint in their original
    /// recency order (scans are newest-first; the checkpoint emits
    /// oldest-first precisely because recovery re-appends).
    #[test]
    fn checkpoint_recovery_preserves_neighbor_order() {
        let dir = tempfile::tempdir().unwrap();
        let (a, dsts);
        {
            let g = LiveGraph::open(durable_options(dir.path())).unwrap();
            let mut txn = g.begin_write().unwrap();
            a = txn.create_vertex(b"hub").unwrap();
            dsts = (0..8)
                .map(|i| {
                    let d = txn.create_vertex(format!("d{i}").as_bytes()).unwrap();
                    txn.put_edge(a, 0, d, b"").unwrap();
                    d
                })
                .collect::<Vec<_>>();
            txn.commit().unwrap();

            let r = g.begin_read().unwrap();
            let newest_first: Vec<_> = dsts.iter().rev().copied().collect();
            let mut scanned = Vec::new();
            r.for_each_neighbor(a, 0, |d| scanned.push(d));
            assert_eq!(scanned, newest_first);
            drop(r);
            g.checkpoint().unwrap();
        }
        let g = LiveGraph::open(durable_options(dir.path())).unwrap();
        let r = g.begin_read().unwrap();
        let newest_first: Vec<_> = dsts.iter().rev().copied().collect();
        let mut scanned = Vec::new();
        r.for_each_neighbor(a, 0, |d| scanned.push(d));
        assert_eq!(
            scanned, newest_first,
            "recovered scan order must stay newest-first"
        );
    }

    #[test]
    fn checkpoint_prunes_wal_and_recovery_uses_both() {
        let dir = tempfile::tempdir().unwrap();
        let (a, b, c);
        {
            let g = LiveGraph::open(durable_options(dir.path())).unwrap();
            let mut txn = g.begin_write().unwrap();
            a = txn.create_vertex(b"a").unwrap();
            b = txn.create_vertex(b"b").unwrap();
            txn.put_edge(a, 0, b, b"pre-checkpoint").unwrap();
            txn.commit().unwrap();

            g.checkpoint().unwrap();
            let wal_len_after_checkpoint =
                std::fs::metadata(dir.path().join("wal.log")).unwrap().len();

            // Post-checkpoint writes land only in the WAL.
            let mut txn = g.begin_write().unwrap();
            c = txn.create_vertex(b"c").unwrap();
            txn.put_edge(a, 0, c, b"post-checkpoint").unwrap();
            txn.commit().unwrap();
            assert!(
                std::fs::metadata(dir.path().join("wal.log")).unwrap().len()
                    > wal_len_after_checkpoint
            );
            assert!(dir.path().join("checkpoint.dat").exists());
        }
        let g = LiveGraph::open(durable_options(dir.path())).unwrap();
        let r = g.begin_read().unwrap();
        assert_eq!(r.get_edge(a, 0, b), Some(&b"pre-checkpoint"[..]));
        assert_eq!(r.get_edge(a, 0, c), Some(&b"post-checkpoint"[..]));
        assert_eq!(r.get_vertex(c), Some(&b"c"[..]));
    }

    #[test]
    fn new_writes_after_recovery_get_higher_epochs() {
        let dir = tempfile::tempdir().unwrap();
        let a;
        let epoch_before;
        {
            let g = LiveGraph::open(durable_options(dir.path())).unwrap();
            let mut txn = g.begin_write().unwrap();
            a = txn.create_vertex(b"a").unwrap();
            epoch_before = txn.commit().unwrap();
        }
        {
            let g = LiveGraph::open(durable_options(dir.path())).unwrap();
            let mut txn = g.begin_write().unwrap();
            let b = txn.create_vertex(b"b").unwrap();
            txn.put_edge(a, 0, b, b"").unwrap();
            let epoch_after = txn.commit().unwrap();
            assert!(
                epoch_after > epoch_before,
                "epochs must not go backwards across recovery"
            );
            let r = g.begin_read().unwrap();
            assert_eq!(r.degree(a, 0), 1);
        }
    }

    #[test]
    fn recovery_of_empty_directory_is_a_noop() {
        let dir = tempfile::tempdir().unwrap();
        let g = LiveGraph::open(durable_options(dir.path())).unwrap();
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    fn checkpoint_without_data_dir_fails() {
        let g = LiveGraph::in_memory().unwrap();
        assert!(g.checkpoint().is_err());
    }
}
