//! Group commit coordination (the paper's *persist phase*, §5).
//!
//! Write transactions finish their work phase and hand their logical
//! operations to the [`CommitCoordinator`]. Committers form *commit groups*:
//! the first committer becomes the group leader, drains every queued
//! request, advances the global write epoch `GWE` once for the whole group,
//! appends one batch to the WAL, issues a single `fsync`, and hands every
//! member its write timestamp `TWE = GWE`. Each member then performs its own
//! *apply phase*; the global read epoch `GRE` only advances to an epoch once
//! every transaction of that commit group (and of all earlier groups) has
//! finished applying — this is what guarantees that a transaction's read
//! timestamp is always smaller than the write timestamp of any ongoing
//! transaction.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::epoch::EpochManager;
use crate::error::Result;
use crate::types::Timestamp;
use crate::wal::{SyncMode, WalOp, WalRecord, WalWriter};

/// A commit request queued by a write transaction.
struct PendingCommit {
    request: u64,
    ops: Vec<WalOp>,
    log_to_wal: bool,
}

#[derive(Default)]
struct GroupState {
    queue: Vec<PendingCommit>,
    /// Assigned write epochs for requests whose group has persisted.
    assigned: HashMap<u64, Timestamp>,
    leader_active: bool,
    next_request: u64,
}

/// Tracks apply-phase completion so `GRE` advances in epoch order.
#[derive(Default)]
struct ApplyTracker {
    /// epoch → number of transactions still applying.
    outstanding: BTreeMap<Timestamp, usize>,
}

/// The shared commit clock: pairs the global write epoch with the apply
/// tracker that gates `GRE` publication.
///
/// A plain [`crate::LiveGraph`] owns one privately. A
/// [`crate::ShardedGraph`](crate::sharded::ShardedGraph) hands the *same*
/// clock to every shard's coordinator so that (a) epoch assignment and
/// obligation registration are atomic across shards — otherwise a shard
/// could publish `GRE = e` while another shard's group with epoch `e' < e`
/// is still applying — and (b) a cross-shard transaction becomes visible on
/// all shards at once: `GRE` only reaches its epoch after every per-shard
/// part has applied.
pub(crate) struct GroupClock {
    tracker: Mutex<ApplyTracker>,
    /// Signalled whenever `GRE` advances; committers waiting for session
    /// consistency sleep here instead of spin-yielding (on oversubscribed
    /// cores a spinning committer steals the quantum from the very threads
    /// whose applies it is waiting for).
    gre_cv: Condvar,
}

impl GroupClock {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            tracker: Mutex::new(ApplyTracker::default()),
            gre_cv: Condvar::new(),
        })
    }

    /// Blocks until `GRE >= epoch` (i.e. until every transaction of every
    /// epoch up to and including `epoch` has finished its apply phase).
    pub(crate) fn wait_for_gre(&self, epochs: &EpochManager, epoch: Timestamp) {
        // Fast path: the caller's own `finish_apply` usually advanced GRE
        // already (it always does when no other commits are in flight).
        for _ in 0..64 {
            if epochs.gre() >= epoch {
                return;
            }
            std::hint::spin_loop();
        }
        let mut t = self.tracker.lock();
        while epochs.gre() < epoch {
            self.gre_cv.wait(&mut t);
        }
    }

    /// Atomically advances `GWE` and registers `participants` apply
    /// obligations for the new epoch. Holding the tracker lock across both
    /// steps is what makes the pair atomic against other coordinators
    /// sharing this clock.
    pub(crate) fn begin_group(&self, epochs: &EpochManager, participants: usize) -> Timestamp {
        let mut t = self.tracker.lock();
        let epoch = epochs.advance_gwe();
        t.outstanding.insert(epoch, participants);
        epoch
    }

    /// Marks one obligation of `epoch` as applied and advances `GRE` across
    /// every fully-applied prefix of epochs.
    pub(crate) fn finish_apply(&self, epochs: &EpochManager, epoch: Timestamp) {
        let mut t = self.tracker.lock();
        if let Some(count) = t.outstanding.get_mut(&epoch) {
            *count -= 1;
        }
        let mut new_gre = epochs.gre();
        while let Some((&e, &count)) = t.outstanding.iter().next() {
            if count == 0 {
                t.outstanding.remove(&e);
                new_gre = e;
            } else {
                break;
            }
        }
        if new_gre > epochs.gre() {
            epochs.publish_gre(new_gre);
            self.gre_cv.notify_all();
        }
    }
}

/// Coordinates WAL persistence and epoch publication for commits.
pub struct CommitCoordinator {
    wal: Option<Mutex<WalWriter>>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    clock: Arc<GroupClock>,
}

impl CommitCoordinator {
    /// Creates a coordinator with a private clock. `wal_path = None`
    /// disables durability (pure in-memory operation); otherwise the WAL is
    /// opened in the given sync mode.
    pub fn new(wal_path: Option<&Path>, sync: SyncMode) -> Result<Self> {
        Self::with_clock(wal_path, sync, GroupClock::new())
    }

    /// Creates a coordinator sharing an externally owned clock (the sharded
    /// engine's epoch service).
    pub(crate) fn with_clock(
        wal_path: Option<&Path>,
        sync: SyncMode,
        clock: Arc<GroupClock>,
    ) -> Result<Self> {
        let wal = match wal_path {
            Some(path) => Some(Mutex::new(WalWriter::open(path, sync)?)),
            None => None,
        };
        Ok(Self {
            wal,
            group: Mutex::new(GroupState::default()),
            group_cv: Condvar::new(),
            clock,
        })
    }

    /// Appends one already-framed record to this coordinator's WAL (no-op
    /// without a WAL). Used by the cross-shard commit path, which assigns
    /// its epoch through the shared clock rather than a per-shard group.
    pub(crate) fn append_record(&self, record: &WalRecord) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.lock().append_group(std::slice::from_ref(record))?;
        }
        Ok(())
    }

    /// True if a WAL is configured.
    #[cfg(test)]
    pub fn durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Total bytes appended to the WAL so far (0 without a WAL).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.as_ref().map(|w| w.lock().bytes_written()).unwrap_or(0)
    }

    /// Runs `f` while holding the WAL exclusively (used by checkpointing to
    /// prune the log without racing group leaders).
    pub fn with_wal_locked<R>(&self, f: impl FnOnce(Option<&mut WalWriter>) -> R) -> R {
        match &self.wal {
            Some(w) => {
                let mut guard = w.lock();
                f(Some(&mut guard))
            }
            None => f(None),
        }
    }

    /// Persist phase: queues this transaction's operations, participates in
    /// (or leads) a commit group and returns the assigned write timestamp.
    ///
    /// On return, the WAL (if any) durably contains this transaction and the
    /// epoch has been registered with the apply tracker; the caller must
    /// perform its apply phase and then call [`CommitCoordinator::finish_apply`].
    #[cfg(test)]
    pub fn persist(&self, epochs: &EpochManager, ops: Vec<WalOp>) -> Result<Timestamp> {
        self.persist_with(epochs, ops, true)
    }

    /// Like [`CommitCoordinator::persist`], with control over whether the
    /// operations are logged to the WAL (recovery replay passes `false`).
    pub fn persist_with(
        &self,
        epochs: &EpochManager,
        ops: Vec<WalOp>,
        log_to_wal: bool,
    ) -> Result<Timestamp> {
        let request = {
            let mut g = self.group.lock();
            let id = g.next_request;
            g.next_request += 1;
            g.queue.push(PendingCommit {
                request: id,
                ops,
                log_to_wal,
            });
            if g.leader_active {
                // A leader is running; wait for it to persist our request.
                loop {
                    if let Some(epoch) = g.assigned.remove(&id) {
                        return Ok(epoch);
                    }
                    self.group_cv.wait(&mut g);
                }
            }
            g.leader_active = true;
            id
        };
        // This thread is the leader: persist groups until the queue drains.
        let mut my_epoch = None;
        loop {
            let batch = {
                let mut g = self.group.lock();
                if g.queue.is_empty() {
                    g.leader_active = false;
                    // Wake any committer that queued after our last drain but
                    // found `leader_active == true` just before we cleared it.
                    self.group_cv.notify_all();
                    break;
                }
                std::mem::take(&mut g.queue)
            };
            // Atomically take the next epoch and register the apply
            // obligations before anyone learns the epoch.
            let epoch = self.clock.begin_group(epochs, batch.len());
            if let Some(wal) = &self.wal {
                let records: Vec<WalRecord> = batch
                    .iter()
                    .filter(|p| p.log_to_wal)
                    .map(|p| WalRecord {
                        epoch,
                        ops: p.ops.clone(),
                    })
                    .collect();
                if !records.is_empty() {
                    wal.lock().append_group(&records)?;
                }
            }
            let mut g = self.group.lock();
            for p in &batch {
                if p.request == request {
                    my_epoch = Some(epoch);
                } else {
                    g.assigned.insert(p.request, epoch);
                }
            }
            self.group_cv.notify_all();
        }
        Ok(my_epoch.expect("leader's own request must be part of a batch"))
    }

    /// Apply-phase completion: marks one transaction of `epoch` as applied
    /// and advances `GRE` across every fully-applied prefix of epochs.
    pub fn finish_apply(&self, epochs: &EpochManager, epoch: Timestamp) {
        self.clock.finish_apply(epochs, epoch);
    }

    /// Blocks until `GRE >= epoch` (session consistency after a commit).
    pub(crate) fn wait_for_gre(&self, epochs: &EpochManager, epoch: Timestamp) {
        self.clock.wait_for_gre(epochs, epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn coordinator(dir: &tempfile::TempDir, durable: bool) -> CommitCoordinator {
        let path = dir.path().join("wal.log");
        CommitCoordinator::new(durable.then_some(path.as_path()), SyncMode::NoSync).unwrap()
    }

    #[test]
    fn single_commit_advances_gre_after_apply() {
        let dir = tempfile::tempdir().unwrap();
        let c = coordinator(&dir, false);
        let epochs = EpochManager::new(4);
        let epoch = c.persist(&epochs, vec![]).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(epochs.gre(), 0, "GRE must not move before apply completes");
        c.finish_apply(&epochs, epoch);
        assert_eq!(epochs.gre(), 1);
    }

    #[test]
    fn epochs_only_publish_in_order() {
        let dir = tempfile::tempdir().unwrap();
        let c = coordinator(&dir, false);
        let epochs = EpochManager::new(4);
        let e1 = c.persist(&epochs, vec![]).unwrap();
        let e2 = c.persist(&epochs, vec![]).unwrap();
        assert!(e2 > e1);
        // Finish the later epoch first: GRE must not jump over e1.
        c.finish_apply(&epochs, e2);
        assert_eq!(epochs.gre(), 0);
        c.finish_apply(&epochs, e1);
        assert_eq!(epochs.gre(), e2);
    }

    #[test]
    fn durable_commits_reach_the_wal() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        let c = CommitCoordinator::new(Some(path.as_path()), SyncMode::Fsync).unwrap();
        let epochs = EpochManager::new(4);
        let ops = vec![WalOp::CreateVertex {
            vertex: 1,
            properties: b"x".to_vec(),
        }];
        let epoch = c.persist(&epochs, ops.clone()).unwrap();
        c.finish_apply(&epochs, epoch);
        let records = crate::wal::read_wal(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].epoch, epoch);
        assert_eq!(records[0].ops, ops);
        assert!(c.durable());
        assert!(c.wal_bytes() > 0);
    }

    #[test]
    fn concurrent_commits_all_receive_epochs_and_gre_catches_up() {
        let dir = tempfile::tempdir().unwrap();
        let c = Arc::new(coordinator(&dir, true));
        let epochs = Arc::new(EpochManager::new(32));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            let epochs = Arc::clone(&epochs);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..50u64 {
                    let ops = vec![WalOp::PutEdge {
                        src: i,
                        label: 0,
                        dst: i + 1,
                        properties: vec![],
                    }];
                    let epoch = c.persist(&epochs, ops).unwrap();
                    c.finish_apply(&epochs, epoch);
                    got.push(epoch);
                }
                got
            }));
        }
        let mut max_epoch = 0;
        for h in handles {
            for e in h.join().unwrap() {
                assert!(e > 0);
                max_epoch = max_epoch.max(e);
            }
        }
        assert_eq!(epochs.gre(), max_epoch, "GRE must catch up to the last group");
        assert!(max_epoch <= 8 * 50, "epochs are grouped, never exceed txn count");
    }

    #[test]
    fn group_commit_batches_under_contention() {
        // With many concurrent committers and a slow (fsync) WAL, the number
        // of consumed epochs should be visibly smaller than the number of
        // transactions — evidence that groups of more than one formed.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        let c = Arc::new(CommitCoordinator::new(Some(path.as_path()), SyncMode::Fsync).unwrap());
        let epochs = Arc::new(EpochManager::new(32));
        let txns_per_thread = 30;
        let threads = 8;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let c = Arc::clone(&c);
            let epochs = Arc::clone(&epochs);
            handles.push(std::thread::spawn(move || {
                for _ in 0..txns_per_thread {
                    let e = c.persist(&epochs, vec![]).unwrap();
                    c.finish_apply(&epochs, e);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * txns_per_thread) as i64;
        assert!(epochs.gwe() <= total);
        assert!(epochs.gwe() >= 1);
    }
}
