//! Group commit coordination (the paper's *persist phase*, §5).
//!
//! Write transactions finish their work phase and hand their logical
//! operations to the [`CommitCoordinator`]. Committers form *commit groups*:
//! the first committer becomes the group leader, drains every queued
//! request, advances the global write epoch `GWE` once for the whole group,
//! enqueues the group's records to the WAL's group-commit coordinator
//! ([`crate::wal::GroupWal`]) and hands every member its write timestamp
//! `TWE = GWE`. Leadership ends there — the leader never blocks on I/O
//! while holding it — and every member (leader included) then waits for a
//! WAL flush covering its records: one buffered write + one `fsync` makes
//! a whole batch of transactions (possibly spanning several epoch groups)
//! durable at once. Only after that durability point does a member perform
//! its *apply phase*; the global read epoch `GRE` only advances to an epoch
//! once every transaction of that commit group (and of all earlier groups)
//! has finished applying — this is what guarantees that a transaction's
//! read timestamp is always smaller than the write timestamp of any ongoing
//! transaction, and that nothing becomes visible before it is durable.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;

use crate::sync::{Arc, Condvar, Mutex};

use crate::epoch::EpochManager;
use crate::error::Result;
use crate::telemetry::Telemetry;
use crate::types::Timestamp;
use crate::wal::{GroupCommitConfig, GroupWal, SyncMode, WalOp, WalRecord, WalStats, WalWriter};

/// A commit request queued by a write transaction.
struct PendingCommit {
    request: u64,
    ops: Vec<WalOp>,
    log_to_wal: bool,
}

#[derive(Default)]
struct GroupState {
    queue: Vec<PendingCommit>,
    /// Assigned write epoch + WAL flush ticket for requests whose group has
    /// been formed (the ticket is `None` for unlogged / in-memory commits).
    assigned: HashMap<u64, (Timestamp, Option<u64>)>,
    leader_active: bool,
    next_request: u64,
}

/// Tracks apply-phase completion so `GRE` advances in epoch order.
#[derive(Default)]
struct ApplyTracker {
    /// epoch → number of transactions still applying.
    outstanding: BTreeMap<Timestamp, usize>,
}

/// The shared commit clock: pairs the global write epoch with the apply
/// tracker that gates `GRE` publication.
///
/// A plain [`crate::LiveGraph`] owns one privately. A
/// [`crate::ShardedGraph`](crate::sharded::ShardedGraph) hands the *same*
/// clock to every shard's coordinator so that (a) epoch assignment and
/// obligation registration are atomic across shards — otherwise a shard
/// could publish `GRE = e` while another shard's group with epoch `e' < e`
/// is still applying — and (b) a cross-shard transaction becomes visible on
/// all shards at once: `GRE` only reaches its epoch after every per-shard
/// part has applied.
#[doc(hidden)]
pub struct GroupClock {
    tracker: Mutex<ApplyTracker>,
    /// Signalled whenever `GRE` advances; committers waiting for session
    /// consistency sleep here instead of spin-yielding (on oversubscribed
    /// cores a spinning committer steals the quantum from the very threads
    /// whose applies it is waiting for).
    gre_cv: Condvar,
}

impl GroupClock {
    #[doc(hidden)]
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            tracker: Mutex::new(ApplyTracker::default()),
            gre_cv: Condvar::new(),
        })
    }

    /// Blocks until `GRE >= epoch` (i.e. until every transaction of every
    /// epoch up to and including `epoch` has finished its apply phase).
    #[doc(hidden)]
    pub fn wait_for_gre(&self, epochs: &EpochManager, epoch: Timestamp) {
        // Fast path: the caller's own `finish_apply` usually advanced GRE
        // already (it always does when no other commits are in flight).
        // Under the model checker a single probe suffices — extra spins only
        // multiply the interleavings the checker must explore.
        #[cfg(livegraph_loom)]
        const SPINS: usize = 1;
        #[cfg(not(livegraph_loom))]
        const SPINS: usize = 64;
        for _ in 0..SPINS {
            if epochs.gre() >= epoch {
                return;
            }
            crate::sync::hint::spin_loop();
        }
        let mut t = self.tracker.lock();
        while epochs.gre() < epoch {
            self.gre_cv.wait(&mut t);
        }
    }

    /// Atomically advances `GWE`, registers `participants` apply
    /// obligations for the new epoch, and runs `log` with the new epoch —
    /// all while the tracker lock is held, which makes the triple atomic
    /// against other coordinators sharing this clock. Commit paths use
    /// `log` to enqueue their WAL records *inside* epoch assignment, which
    /// pins per-WAL file order to epoch order: two groups can never appear
    /// in a log in the opposite order of their epochs, so a torn tail is
    /// always an epoch-prefix — the invariant the crash-recovery oracle
    /// checks. `log` must not block (a [`GroupWal`] enqueue never does).
    #[doc(hidden)]
    pub fn begin_group_with<R>(
        &self,
        epochs: &EpochManager,
        participants: usize,
        log: impl FnOnce(Timestamp) -> R,
    ) -> (Timestamp, R) {
        let mut t = self.tracker.lock();
        let epoch = epochs.advance_gwe();
        t.outstanding.insert(epoch, participants);
        let logged = log(epoch);
        (epoch, logged)
    }

    /// Marks one obligation of `epoch` as applied and advances `GRE` across
    /// every fully-applied prefix of epochs.
    #[doc(hidden)]
    pub fn finish_apply(&self, epochs: &EpochManager, epoch: Timestamp) {
        let mut t = self.tracker.lock();
        if let Some(count) = t.outstanding.get_mut(&epoch) {
            *count -= 1;
        }
        let mut new_gre = epochs.gre();
        while let Some((&e, &count)) = t.outstanding.iter().next() {
            if count == 0 {
                t.outstanding.remove(&e);
                new_gre = e;
            } else {
                break;
            }
        }
        if new_gre > epochs.gre() {
            epochs.publish_gre(new_gre);
            self.gre_cv.notify_all();
        }
    }
}

/// Coordinates WAL persistence and epoch publication for commits.
pub struct CommitCoordinator {
    wal: Option<GroupWal>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    clock: Arc<GroupClock>,
    /// Span histograms for the persist phase (group formation, WAL
    /// enqueue, fsync wait). Defaults to a disabled registry; engines
    /// install their shared one on open.
    telemetry: Arc<Telemetry>,
}

impl CommitCoordinator {
    /// Creates a coordinator with a private clock. `wal_path = None`
    /// disables durability (pure in-memory operation); otherwise the WAL is
    /// opened in the given sync mode with the given group-commit tuning.
    pub fn new(
        wal_path: Option<&Path>,
        sync: SyncMode,
        group_commit: GroupCommitConfig,
    ) -> Result<Self> {
        Self::with_clock(wal_path, sync, group_commit, GroupClock::new())
    }

    /// Creates a coordinator sharing an externally owned clock (the sharded
    /// engine's epoch service).
    pub(crate) fn with_clock(
        wal_path: Option<&Path>,
        sync: SyncMode,
        group_commit: GroupCommitConfig,
        clock: Arc<GroupClock>,
    ) -> Result<Self> {
        let wal = match wal_path {
            Some(path) => Some(GroupWal::new(WalWriter::open(path, sync)?, group_commit)),
            None => None,
        };
        Ok(Self {
            wal,
            group: Mutex::new(GroupState::default()),
            group_cv: Condvar::new(),
            clock,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Installs the engine's shared telemetry registry (called once during
    /// engine open, before the coordinator is shared between threads).
    pub(crate) fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = telemetry;
    }

    /// Enqueues one already-framed record to this coordinator's WAL,
    /// returning the flush ticket to pass to
    /// [`CommitCoordinator::wait_ticket`], or `None` without a WAL. Used by
    /// the cross-shard commit path, which assigns its epoch through the
    /// shared clock and replicates the record to every participant's WAL;
    /// enqueueing (instead of writing + fsyncing inline) lets concurrent
    /// cross-shard commits share one fsync per participant log.
    pub(crate) fn enqueue_record(&self, record: &WalRecord) -> Option<u64> {
        self.wal.as_ref().map(|w| w.enqueue(vec![record.clone()]))
    }

    /// Blocks until the records behind `ticket` are durable on this
    /// coordinator's WAL (flushing as leader if nobody else is).
    pub(crate) fn wait_ticket(&self, ticket: u64) -> Result<()> {
        self.wal
            .as_ref()
            .expect("a flush ticket implies a WAL")
            .wait_durable(ticket)
    }

    /// True if a WAL is configured.
    #[cfg(test)]
    pub fn durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Counter snapshot for this coordinator's WAL (zeros without one).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.as_ref().map(|w| w.stats()).unwrap_or_default()
    }

    /// The group-commit coordinator itself, if durability is configured
    /// (WAL tails wait on its flush condvar between polls).
    pub(crate) fn group_wal(&self) -> Option<&GroupWal> {
        self.wal.as_ref()
    }

    /// Runs `f` while holding the WAL file exclusively (used by
    /// checkpointing to prune the log without racing flush leaders).
    pub fn with_wal_locked<R>(&self, f: impl FnOnce(Option<&mut WalWriter>) -> R) -> R {
        match &self.wal {
            Some(w) => w.with_writer(|writer| f(Some(writer))),
            None => f(None),
        }
    }

    /// Persist phase: queues this transaction's operations, participates in
    /// (or leads) a commit group and returns the assigned write timestamp.
    ///
    /// On return, the WAL (if any) durably contains this transaction and the
    /// epoch has been registered with the apply tracker; the caller must
    /// perform its apply phase and then call [`CommitCoordinator::finish_apply`].
    #[cfg(test)]
    pub fn persist(&self, epochs: &EpochManager, ops: Vec<WalOp>) -> Result<Timestamp> {
        self.persist_with(epochs, ops, true, false)
    }

    /// Like [`CommitCoordinator::persist`], with control over whether the
    /// operations are logged to the WAL (recovery replay passes `false`).
    /// `traced` commits record the enqueue/fsync span histograms; the rest
    /// skip the clock reads (see `Telemetry::trace_commit`).
    pub fn persist_with(
        &self,
        epochs: &EpochManager,
        ops: Vec<WalOp>,
        log_to_wal: bool,
        traced: bool,
    ) -> Result<Timestamp> {
        // Span: group formation + WAL enqueue — from entering the persist
        // phase until this request has an epoch and flush ticket assigned
        // (queue wait for followers, drain-and-enqueue loops for leaders).
        let enqueue_timer = if traced { self.telemetry.timer() } else { None };
        let request = {
            let mut g = self.group.lock();
            let id = g.next_request;
            g.next_request += 1;
            g.queue.push(PendingCommit {
                request: id,
                ops,
                log_to_wal,
            });
            if g.leader_active {
                // A leader is running; wait for it to form our group, then
                // wait out the WAL flush covering us.
                loop {
                    if let Some((epoch, ticket)) = g.assigned.remove(&id) {
                        drop(g);
                        self.telemetry
                            .commit_wal_enqueue_seconds
                            .observe_timer(enqueue_timer);
                        return self.await_durable(epochs, epoch, ticket, traced);
                    }
                    self.group_cv.wait(&mut g);
                }
            }
            g.leader_active = true;
            id
        };
        // This thread is the group leader: form epoch groups until the queue
        // drains. Leadership covers only epoch assignment and the WAL
        // *enqueue* — never the flush — so arrivals during an fsync elect a
        // fresh leader immediately and pile into the next flush batch
        // instead of serialising behind this one.
        let mut mine = None;
        loop {
            let batch = {
                let mut g = self.group.lock();
                if g.queue.is_empty() {
                    g.leader_active = false;
                    // Wake any committer that queued after our last drain but
                    // found `leader_active == true` just before we cleared it.
                    self.group_cv.notify_all();
                    break;
                }
                std::mem::take(&mut g.queue)
            };
            // Batch-size observations ride the leader's trace sample:
            // leaders are arbitrary committers, so batches are sampled at
            // the same 1-in-N rate as commit spans.
            if traced && self.telemetry.enabled() {
                self.telemetry
                    .wal_batch_records_total
                    .observe(batch.len() as u64);
            }
            // Atomically: take the next epoch, register the apply
            // obligations, and enqueue the group's records — all before
            // anyone learns the epoch, and in epoch order within the WAL.
            let (epoch, ticket) = self.clock.begin_group_with(epochs, batch.len(), |epoch| {
                let wal = self.wal.as_ref()?;
                let records: Vec<WalRecord> = batch
                    .iter()
                    .filter(|p| p.log_to_wal)
                    .map(|p| WalRecord {
                        epoch,
                        ops: p.ops.clone(),
                    })
                    .collect();
                if records.is_empty() {
                    None
                } else {
                    Some(wal.enqueue(records))
                }
            });
            let mut g = self.group.lock();
            for p in &batch {
                if p.request == request {
                    mine = Some((epoch, ticket));
                } else {
                    g.assigned.insert(p.request, (epoch, ticket));
                }
            }
            self.group_cv.notify_all();
        }
        let (epoch, ticket) = mine.expect("leader's own request must be part of a batch");
        self.telemetry
            .commit_wal_enqueue_seconds
            .observe_timer(enqueue_timer);
        self.await_durable(epochs, epoch, ticket, traced)
    }

    /// Durability point: blocks until the flush covering `ticket` lands.
    /// Success acks the commit; the caller then applies. On flush failure
    /// the transaction will never apply, so its obligation is discharged
    /// here — otherwise `GRE` would wedge behind the dead epoch and stall
    /// every later committer's session-consistency wait.
    fn await_durable(
        &self,
        epochs: &EpochManager,
        epoch: Timestamp,
        ticket: Option<u64>,
        traced: bool,
    ) -> Result<Timestamp> {
        if let Some(ticket) = ticket {
            // Span: fsync wait — the time this committer blocks until the
            // group flush covering its records lands on the device.
            let fsync_timer = if traced { self.telemetry.timer() } else { None };
            let waited = self.wait_ticket(ticket);
            self.telemetry
                .commit_fsync_wait_seconds
                .observe_timer(fsync_timer);
            if let Err(e) = waited {
                self.clock.finish_apply(epochs, epoch);
                return Err(e);
            }
        }
        Ok(epoch)
    }

    /// Apply-phase completion: marks one transaction of `epoch` as applied
    /// and advances `GRE` across every fully-applied prefix of epochs.
    pub fn finish_apply(&self, epochs: &EpochManager, epoch: Timestamp) {
        self.clock.finish_apply(epochs, epoch);
    }

    /// Blocks until `GRE >= epoch` (session consistency after a commit).
    pub(crate) fn wait_for_gre(&self, epochs: &EpochManager, epoch: Timestamp) {
        self.clock.wait_for_gre(epochs, epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn coordinator(dir: &tempfile::TempDir, durable: bool) -> CommitCoordinator {
        let path = dir.path().join("wal.log");
        CommitCoordinator::new(
            durable.then_some(path.as_path()),
            SyncMode::NoSync,
            GroupCommitConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn single_commit_advances_gre_after_apply() {
        let dir = tempfile::tempdir().unwrap();
        let c = coordinator(&dir, false);
        let epochs = EpochManager::new(4);
        let epoch = c.persist(&epochs, vec![]).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(epochs.gre(), 0, "GRE must not move before apply completes");
        c.finish_apply(&epochs, epoch);
        assert_eq!(epochs.gre(), 1);
    }

    #[test]
    fn epochs_only_publish_in_order() {
        let dir = tempfile::tempdir().unwrap();
        let c = coordinator(&dir, false);
        let epochs = EpochManager::new(4);
        let e1 = c.persist(&epochs, vec![]).unwrap();
        let e2 = c.persist(&epochs, vec![]).unwrap();
        assert!(e2 > e1);
        // Finish the later epoch first: GRE must not jump over e1.
        c.finish_apply(&epochs, e2);
        assert_eq!(epochs.gre(), 0);
        c.finish_apply(&epochs, e1);
        assert_eq!(epochs.gre(), e2);
    }

    #[test]
    fn durable_commits_reach_the_wal() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        let c = CommitCoordinator::new(
            Some(path.as_path()),
            SyncMode::Fsync,
            GroupCommitConfig::default(),
        )
        .unwrap();
        let epochs = EpochManager::new(4);
        let ops = vec![WalOp::CreateVertex {
            vertex: 1,
            properties: b"x".to_vec(),
        }];
        let epoch = c.persist(&epochs, ops.clone()).unwrap();
        c.finish_apply(&epochs, epoch);
        let records = crate::wal::read_wal(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].epoch, epoch);
        assert_eq!(records[0].ops, ops);
        assert!(c.durable());
        assert!(c.wal_stats().bytes > 0);
    }

    #[test]
    fn concurrent_commits_all_receive_epochs_and_gre_catches_up() {
        let dir = tempfile::tempdir().unwrap();
        let c = Arc::new(coordinator(&dir, true));
        let epochs = Arc::new(EpochManager::new(32));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            let epochs = Arc::clone(&epochs);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..50u64 {
                    let ops = vec![WalOp::PutEdge {
                        src: i,
                        label: 0,
                        dst: i + 1,
                        properties: vec![],
                    }];
                    let epoch = c.persist(&epochs, ops).unwrap();
                    c.finish_apply(&epochs, epoch);
                    got.push(epoch);
                }
                got
            }));
        }
        let mut max_epoch = 0;
        for h in handles {
            for e in h.join().unwrap() {
                assert!(e > 0);
                max_epoch = max_epoch.max(e);
            }
        }
        assert_eq!(epochs.gre(), max_epoch, "GRE must catch up to the last group");
        assert!(max_epoch <= 8 * 50, "epochs are grouped, never exceed txn count");
    }

    #[test]
    fn group_commit_batches_under_contention() {
        // With many concurrent committers and a slow (fsync) WAL, the number
        // of consumed epochs should be visibly smaller than the number of
        // transactions — evidence that groups of more than one formed.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        let c = Arc::new(CommitCoordinator::new(
            Some(path.as_path()),
            SyncMode::Fsync,
            GroupCommitConfig::default(),
        )
        .unwrap());
        let epochs = Arc::new(EpochManager::new(32));
        let txns_per_thread = 30;
        let threads = 8;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let c = Arc::clone(&c);
            let epochs = Arc::clone(&epochs);
            handles.push(std::thread::spawn(move || {
                for _ in 0..txns_per_thread {
                    let e = c.persist(&epochs, vec![]).unwrap();
                    c.finish_apply(&epochs, e);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * txns_per_thread) as i64;
        assert!(epochs.gwe() <= total);
        assert!(epochs.gwe() >= 1);
    }
}
