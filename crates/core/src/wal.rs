//! Write-ahead log with group commit.
//!
//! §5 (persist phase) and §6 (recovery) of the paper: the transaction
//! manager appends a batch of log entries for every commit group to a
//! sequential WAL and `fsync`s it before assigning the group its write
//! timestamp; on failure, LiveGraph loads the latest checkpoint and replays
//! committed WAL records.
//!
//! Records are *logical*: they describe the operations of one transaction
//! (vertex/edge puts and deletes) tagged with the commit epoch, so recovery
//! can re-execute them through the normal write path. Each record carries a
//! length and a checksum; a torn tail (crash in the middle of a group write)
//! is detected and discarded.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::error::{Error, Result};
use crate::types::{Label, Timestamp, VertexId};

/// Magic bytes prefixed to every WAL record.
const RECORD_MAGIC: u32 = 0x4C_47_57_4C; // "LGWL"

/// A single logical operation inside a WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A vertex was created with the given properties.
    CreateVertex {
        /// Vertex id assigned by the transaction.
        vertex: VertexId,
        /// Property payload.
        properties: Vec<u8>,
    },
    /// A vertex's properties were overwritten.
    PutVertex {
        /// Target vertex.
        vertex: VertexId,
        /// New property payload.
        properties: Vec<u8>,
    },
    /// An edge was inserted or updated (upsert semantics).
    PutEdge {
        /// Source vertex.
        src: VertexId,
        /// Edge label.
        label: Label,
        /// Destination vertex.
        dst: VertexId,
        /// Property payload.
        properties: Vec<u8>,
    },
    /// An edge was deleted.
    DeleteEdge {
        /// Source vertex.
        src: VertexId,
        /// Edge label.
        label: Label,
        /// Destination vertex.
        dst: VertexId,
    },
    /// A vertex was deleted (tombstoned). Its out-edges are invalidated by
    /// the same transaction, so replaying this op is sufficient to restore
    /// the deletion.
    DeleteVertex {
        /// Target vertex.
        vertex: VertexId,
    },
}

/// All operations of one committed transaction, tagged with its epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Commit epoch (the group's `TWE`).
    pub epoch: Timestamp,
    /// Operations in execution order.
    pub ops: Vec<WalOp>,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Corruption("truncated WAL payload".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl WalOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalOp::CreateVertex { vertex, properties } => {
                buf.push(1);
                put_u64(buf, *vertex);
                put_bytes(buf, properties);
            }
            WalOp::PutVertex { vertex, properties } => {
                buf.push(2);
                put_u64(buf, *vertex);
                put_bytes(buf, properties);
            }
            WalOp::PutEdge {
                src,
                label,
                dst,
                properties,
            } => {
                buf.push(3);
                put_u64(buf, *src);
                put_u32(buf, *label as u32);
                put_u64(buf, *dst);
                put_bytes(buf, properties);
            }
            WalOp::DeleteEdge { src, label, dst } => {
                buf.push(4);
                put_u64(buf, *src);
                put_u32(buf, *label as u32);
                put_u64(buf, *dst);
            }
            WalOp::DeleteVertex { vertex } => {
                buf.push(5);
                put_u64(buf, *vertex);
            }
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        let tag = cur.take(1)?[0];
        Ok(match tag {
            1 => WalOp::CreateVertex {
                vertex: cur.u64()?,
                properties: cur.bytes()?,
            },
            2 => WalOp::PutVertex {
                vertex: cur.u64()?,
                properties: cur.bytes()?,
            },
            3 => WalOp::PutEdge {
                src: cur.u64()?,
                label: cur.u32()? as Label,
                dst: cur.u64()?,
                properties: cur.bytes()?,
            },
            4 => WalOp::DeleteEdge {
                src: cur.u64()?,
                label: cur.u32()? as Label,
                dst: cur.u64()?,
            },
            5 => WalOp::DeleteVertex { vertex: cur.u64()? },
            other => return Err(Error::Corruption(format!("unknown WAL op tag {other}"))),
        })
    }
}

impl WalRecord {
    /// Serialises the record payload (without framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        put_u64(&mut buf, self.epoch as u64);
        put_u32(&mut buf, self.ops.len() as u32);
        for op in &self.ops {
            op.encode(&mut buf);
        }
        buf
    }

    /// Parses a record payload.
    pub fn decode_payload(payload: &[u8]) -> Result<Self> {
        let mut cur = Cursor::new(payload);
        let epoch = cur.u64()? as Timestamp;
        let n = cur.u32()? as usize;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(WalOp::decode(&mut cur)?);
        }
        if !cur.done() {
            return Err(Error::Corruption("trailing bytes in WAL record".into()));
        }
        Ok(Self { epoch, ops })
    }
}

/// FNV-1a, used as the WAL record checksum (corruption detection, not
/// cryptographic integrity).
fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Controls whether the WAL issues an `fsync` per commit group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// `fsync` after every commit group (the paper's durable configuration).
    Fsync,
    /// Rely on the OS to flush eventually (used by benchmarks that isolate
    /// the effect of storage latency).
    NoSync,
    /// Benchmarking mode: skip the real `fsync` and model a log device with
    /// the given per-group commit latency instead (the group leader sleeps,
    /// so concurrent groups on *different* WALs overlap their waits exactly
    /// like concurrent device flushes would). The storage crate's
    /// `ColdAccessSimulator` plays the same role for cold reads; this is
    /// its write-side counterpart, used by `shard_scaling` to measure the
    /// engine's commit concurrency independently of the benchmark host's
    /// filesystem-journal behaviour.
    Simulated(std::time::Duration),
}

/// Appender for the write-ahead log.
pub struct WalWriter {
    file: BufWriter<File>,
    path: std::path::PathBuf,
    sync: SyncMode,
    bytes_written: u64,
}

impl WalWriter {
    /// Opens (creating or appending to) the WAL at `path`.
    pub fn open(path: &Path, sync: SyncMode) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes_written = file.metadata()?.len();
        Ok(Self {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            sync,
            bytes_written,
        })
    }

    /// Atomically replaces the WAL contents with `records` (checkpoint
    /// pruning): the new log is written to a temporary file, fsynced,
    /// renamed over the old one, and this writer is re-pointed at it so
    /// later appends land in the replacement file.
    pub fn rewrite(&mut self, records: &[WalRecord]) -> Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut w = WalWriter::open(&tmp, SyncMode::Fsync)?;
            w.append_group(records)?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        self.bytes_written = file.metadata()?.len();
        self.file = BufWriter::new(file);
        Ok(())
    }

    /// Appends a batch of records (one commit group) and makes them durable
    /// according to the sync mode. This is the group-commit write: a single
    /// buffered write + fsync covers every transaction of the group.
    pub fn append_group(&mut self, records: &[WalRecord]) -> Result<()> {
        for record in records {
            let payload = record.encode_payload();
            let mut frame = Vec::with_capacity(payload.len() + 20);
            put_u32(&mut frame, RECORD_MAGIC);
            put_u32(&mut frame, payload.len() as u32);
            frame.extend_from_slice(&payload);
            put_u64(&mut frame, checksum(&payload));
            self.file.write_all(&frame)?;
            self.bytes_written += frame.len() as u64;
        }
        self.file.flush()?;
        match self.sync {
            SyncMode::Fsync => self.file.get_ref().sync_data()?,
            SyncMode::NoSync => {}
            SyncMode::Simulated(latency) => std::thread::sleep(latency),
        }
        Ok(())
    }

    /// Total bytes written to the WAL so far (for write-amplification
    /// accounting in the evaluation harness).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

/// Reads all complete, checksummed records from a WAL file.
///
/// A truncated or corrupt tail terminates the scan without an error (that is
/// the expected crash state); corruption *before* valid records is reported.
pub fn read_wal(path: &Path) -> Result<Vec<WalRecord>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 16 <= bytes.len() {
        let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if magic != RECORD_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let payload_start = pos + 8;
        let payload_end = payload_start + len;
        let frame_end = payload_end + 8;
        if frame_end > bytes.len() {
            break; // torn tail
        }
        let payload = &bytes[payload_start..payload_end];
        let stored = u64::from_le_bytes(bytes[payload_end..frame_end].try_into().unwrap());
        if checksum(payload) != stored {
            break; // torn or corrupt tail
        }
        records.push(WalRecord::decode_payload(payload)?);
        pos = frame_end;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(epoch: Timestamp) -> WalRecord {
        WalRecord {
            epoch,
            ops: vec![
                WalOp::CreateVertex {
                    vertex: 1,
                    properties: b"alice".to_vec(),
                },
                WalOp::PutEdge {
                    src: 1,
                    label: 3,
                    dst: 2,
                    properties: b"since 2020".to_vec(),
                },
                WalOp::DeleteEdge {
                    src: 1,
                    label: 3,
                    dst: 9,
                },
                WalOp::PutVertex {
                    vertex: 2,
                    properties: vec![],
                },
                WalOp::DeleteVertex { vertex: 9 },
            ],
        }
    }

    #[test]
    fn payload_roundtrip() {
        let rec = sample_record(12);
        let payload = rec.encode_payload();
        let decoded = WalRecord::decode_payload(&payload).unwrap();
        assert_eq!(rec, decoded);
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let rec = sample_record(12);
        let payload = rec.encode_payload();
        let err = WalRecord::decode_payload(&payload[..payload.len() - 3]).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path, SyncMode::Fsync).unwrap();
            w.append_group(&[sample_record(1), sample_record(2)]).unwrap();
            w.append_group(&[sample_record(3)]).unwrap();
            assert!(w.bytes_written() > 0);
        }
        let records = read_wal(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].epoch, 1);
        assert_eq!(records[2].epoch, 3);
    }

    #[test]
    fn torn_tail_is_discarded_but_prefix_survives() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path, SyncMode::NoSync).unwrap();
            w.append_group(&[sample_record(1), sample_record(2)]).unwrap();
        }
        // Simulate a crash mid-write of the next group.
        let len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&RECORD_MAGIC.to_le_bytes()).unwrap();
            f.write_all(&1000u32.to_le_bytes()).unwrap();
            f.write_all(b"partial").unwrap();
        }
        assert!(std::fs::metadata(&path).unwrap().len() > len);
        let records = read_wal(&path).unwrap();
        assert_eq!(records.len(), 2, "only the fsynced prefix must be replayed");
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path, SyncMode::NoSync).unwrap();
            w.append_group(&[sample_record(1), sample_record(2)]).unwrap();
        }
        // Flip a byte in the middle of the file (second record's payload).
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = bytes.len() - 20;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let records = read_wal(&path).unwrap();
        assert_eq!(records.len(), 1, "replay stops at the first bad checksum");
    }

    #[test]
    fn reopening_appends_after_existing_records() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path, SyncMode::Fsync).unwrap();
            w.append_group(&[sample_record(1)]).unwrap();
        }
        {
            let mut w = WalWriter::open(&path, SyncMode::Fsync).unwrap();
            w.append_group(&[sample_record(2)]).unwrap();
        }
        let records = read_wal(&path).unwrap();
        assert_eq!(records.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![1, 2]);
    }
}
