//! Write-ahead log with group commit.
//!
//! §5 (persist phase) and §6 (recovery) of the paper: the transaction
//! manager appends a batch of log entries for every commit group to a
//! sequential WAL and `fsync`s it before assigning the group its write
//! timestamp; on failure, LiveGraph loads the latest checkpoint and replays
//! committed WAL records.
//!
//! Records are *logical*: they describe the operations of one transaction
//! (vertex/edge puts and deletes) tagged with the commit epoch, so recovery
//! can re-execute them through the normal write path. Each record carries a
//! length and a checksum; a torn tail (crash in the middle of a group write)
//! is detected and discarded.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::time::Instant;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Condvar, Mutex};

use crate::error::{Error, Result};
use crate::types::{Label, Timestamp, VertexId};

/// Magic bytes prefixed to every WAL record.
const RECORD_MAGIC: u32 = 0x4C_47_57_4C; // "LGWL"

/// A single logical operation inside a WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A vertex was created with the given properties.
    CreateVertex {
        /// Vertex id assigned by the transaction.
        vertex: VertexId,
        /// Property payload.
        properties: Vec<u8>,
    },
    /// A vertex's properties were overwritten.
    PutVertex {
        /// Target vertex.
        vertex: VertexId,
        /// New property payload.
        properties: Vec<u8>,
    },
    /// An edge was inserted or updated (upsert semantics).
    PutEdge {
        /// Source vertex.
        src: VertexId,
        /// Edge label.
        label: Label,
        /// Destination vertex.
        dst: VertexId,
        /// Property payload.
        properties: Vec<u8>,
    },
    /// An edge was deleted.
    DeleteEdge {
        /// Source vertex.
        src: VertexId,
        /// Edge label.
        label: Label,
        /// Destination vertex.
        dst: VertexId,
    },
    /// A vertex was deleted (tombstoned). Its out-edges are invalidated by
    /// the same transaction, so replaying this op is sufficient to restore
    /// the deletion.
    DeleteVertex {
        /// Target vertex.
        vertex: VertexId,
    },
}

/// All operations of one committed transaction, tagged with its epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Commit epoch (the group's `TWE`).
    pub epoch: Timestamp,
    /// Operations in execution order.
    pub ops: Vec<WalOp>,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Corruption("truncated WAL payload".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl WalOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalOp::CreateVertex { vertex, properties } => {
                buf.push(1);
                put_u64(buf, *vertex);
                put_bytes(buf, properties);
            }
            WalOp::PutVertex { vertex, properties } => {
                buf.push(2);
                put_u64(buf, *vertex);
                put_bytes(buf, properties);
            }
            WalOp::PutEdge {
                src,
                label,
                dst,
                properties,
            } => {
                buf.push(3);
                put_u64(buf, *src);
                put_u32(buf, *label as u32);
                put_u64(buf, *dst);
                put_bytes(buf, properties);
            }
            WalOp::DeleteEdge { src, label, dst } => {
                buf.push(4);
                put_u64(buf, *src);
                put_u32(buf, *label as u32);
                put_u64(buf, *dst);
            }
            WalOp::DeleteVertex { vertex } => {
                buf.push(5);
                put_u64(buf, *vertex);
            }
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        let tag = cur.take(1)?[0];
        Ok(match tag {
            1 => WalOp::CreateVertex {
                vertex: cur.u64()?,
                properties: cur.bytes()?,
            },
            2 => WalOp::PutVertex {
                vertex: cur.u64()?,
                properties: cur.bytes()?,
            },
            3 => WalOp::PutEdge {
                src: cur.u64()?,
                label: cur.u32()? as Label,
                dst: cur.u64()?,
                properties: cur.bytes()?,
            },
            4 => WalOp::DeleteEdge {
                src: cur.u64()?,
                label: cur.u32()? as Label,
                dst: cur.u64()?,
            },
            5 => WalOp::DeleteVertex { vertex: cur.u64()? },
            other => return Err(Error::Corruption(format!("unknown WAL op tag {other}"))),
        })
    }
}

impl WalRecord {
    /// Serialises the record payload (without framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        put_u64(&mut buf, self.epoch as u64);
        put_u32(&mut buf, self.ops.len() as u32);
        for op in &self.ops {
            op.encode(&mut buf);
        }
        buf
    }

    /// Parses a record payload.
    pub fn decode_payload(payload: &[u8]) -> Result<Self> {
        let mut cur = Cursor::new(payload);
        let epoch = cur.u64()? as Timestamp;
        let n = cur.u32()? as usize;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(WalOp::decode(&mut cur)?);
        }
        if !cur.done() {
            return Err(Error::Corruption("trailing bytes in WAL record".into()));
        }
        Ok(Self { epoch, ops })
    }
}

/// FNV-1a, used as the WAL record checksum (corruption detection, not
/// cryptographic integrity).
fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Controls whether the WAL issues an `fsync` per commit group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// `fsync` after every commit group (the paper's durable configuration).
    Fsync,
    /// Rely on the OS to flush eventually (used by benchmarks that isolate
    /// the effect of storage latency).
    NoSync,
    /// Benchmarking mode: skip the real `fsync` and model a log device with
    /// the given per-group commit latency instead (the group leader sleeps,
    /// so concurrent groups on *different* WALs overlap their waits exactly
    /// like concurrent device flushes would). The storage crate's
    /// `ColdAccessSimulator` plays the same role for cold reads; this is
    /// its write-side counterpart, used by `shard_scaling` to measure the
    /// engine's commit concurrency independently of the benchmark host's
    /// filesystem-journal behaviour. The sleep is paid once per *batch*, in
    /// [`WalWriter::sync`], matching real fsync semantics.
    Simulated(std::time::Duration),
    /// Fault-injection mode for the crash-consistency harness: the log
    /// device "dies" once `at` total bytes have been appended. Bytes below
    /// the limit persist (and are fsynced, so the surviving prefix really is
    /// durable on the host filesystem); bytes at or past it — including the
    /// tail of a frame straddling the boundary — are silently dropped, and
    /// every later write and sync still reports success. That models the
    /// worst crash for group commit: committers of a torn batch get a
    /// success ack whose records never reached the device. The tear is
    /// observable only through [`WalWriter::torn`] / `GraphStats::wal_torn`.
    CrashAt(u64),
}

/// Tuning knobs for the group-commit coordinator attached to each WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Largest number of transaction records flushed by one write + fsync.
    /// The flush leader drains at most this many queued records per batch.
    pub max_batch: usize,
    /// How long a flush leader lingers for more committers to join before
    /// flushing a batch smaller than `max_batch`. `Duration::ZERO` (the
    /// default) flushes whatever is queued immediately: batching then comes
    /// only from commits that pile up while a previous flush is in flight,
    /// which adds no latency. A non-zero wait trades commit latency for
    /// larger batches on slow log devices.
    pub max_wait: std::time::Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        Self {
            max_batch: 128,
            max_wait: std::time::Duration::ZERO,
        }
    }
}

impl GroupCommitConfig {
    /// Builder: sets the per-flush record cap (clamped to at least 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Builder: sets how long a flush leader lingers for joiners.
    pub fn with_max_wait(mut self, max_wait: std::time::Duration) -> Self {
        self.max_wait = max_wait;
        self
    }
}

/// Point-in-time counters for one WAL, surfaced through `GraphStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Total bytes appended (see [`WalWriter::bytes_written`]).
    pub bytes: u64,
    /// Device syncs issued (`fsync`s, or simulated-latency sleeps).
    pub fsyncs: u64,
    /// Flushed commit batches (each covered by one write + one sync).
    pub groups: u64,
    /// Transaction records across all flushed batches; `group_records >
    /// groups` means multi-record batches formed.
    pub group_records: u64,
    /// True once a `CrashAt` tear has dropped bytes (fault injection only).
    pub torn: bool,
}

/// Appender for the write-ahead log.
pub struct WalWriter {
    file: BufWriter<File>,
    path: std::path::PathBuf,
    sync: SyncMode,
    bytes_written: u64,
    fsyncs: u64,
    torn: bool,
    generation: u64,
}

impl WalWriter {
    /// Opens (creating or appending to) the WAL at `path`.
    pub fn open(path: &Path, sync: SyncMode) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes_written = file.metadata()?.len();
        Ok(Self {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            sync,
            bytes_written,
            fsyncs: 0,
            torn: false,
            generation: 0,
        })
    }

    /// Atomically replaces the WAL contents with `records` (checkpoint
    /// pruning): the new log is written to a temporary file, fsynced,
    /// renamed over the old one, and this writer is re-pointed at it so
    /// later appends land in the replacement file.
    pub fn rewrite(&mut self, records: &[WalRecord]) -> Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut w = WalWriter::open(&tmp, SyncMode::Fsync)?;
            w.append_group(records)?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        self.bytes_written = file.metadata()?.len();
        self.file = BufWriter::new(file);
        // Byte offsets held by WAL tails refer to the replaced file; the
        // generation bump tells them to re-scan from the start.
        self.generation += 1;
        Ok(())
    }

    /// Path of the log file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rewrite counter: bumped whenever [`WalWriter::rewrite`] replaces the
    /// file, invalidating any byte offset captured against the old one.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends a batch of records as one buffered write, without making them
    /// durable. Callers pair this with [`WalWriter::sync`]; the split lets a
    /// flush leader pay the sync cost (fsync latency, or the `Simulated`
    /// sleep) exactly once per batch rather than once per append.
    pub fn append_frames(&mut self, records: &[WalRecord]) -> Result<()> {
        let mut buf = Vec::with_capacity(records.len() * 64);
        for record in records {
            let payload = record.encode_payload();
            put_u32(&mut buf, RECORD_MAGIC);
            put_u32(&mut buf, payload.len() as u32);
            buf.extend_from_slice(&payload);
            put_u64(&mut buf, checksum(&payload));
        }
        if let SyncMode::CrashAt(limit) = self.sync {
            // The device died at byte `limit`: persist the prefix below it,
            // drop the rest on the floor, and keep reporting success.
            let room = limit.saturating_sub(self.bytes_written) as usize;
            let keep = buf.len().min(room);
            if keep < buf.len() {
                self.torn = true;
            }
            buf.truncate(keep);
        }
        self.file.write_all(&buf)?;
        self.bytes_written += buf.len() as u64;
        self.file.flush()?;
        Ok(())
    }

    /// Makes previously appended frames durable according to the sync mode:
    /// a real `fsync`, nothing, one simulated-latency sleep per batch, or
    /// (under `CrashAt`, once torn) a lying no-op success.
    pub fn sync(&mut self) -> Result<()> {
        match self.sync {
            SyncMode::Fsync => {
                self.file.get_ref().sync_data()?;
                self.fsyncs += 1;
            }
            SyncMode::NoSync => {}
            SyncMode::Simulated(latency) => {
                std::thread::sleep(latency);
                self.fsyncs += 1;
            }
            SyncMode::CrashAt(_) => {
                // Keep the surviving prefix honest on the host filesystem;
                // the ack itself is the lie being injected.
                self.file.get_ref().sync_data()?;
                if !self.torn {
                    self.fsyncs += 1;
                }
            }
        }
        Ok(())
    }

    /// Appends a batch of records (one commit group) and makes them durable
    /// according to the sync mode. This is the group-commit write: a single
    /// buffered write + fsync covers every transaction of the group.
    pub fn append_group(&mut self, records: &[WalRecord]) -> Result<()> {
        self.append_frames(records)?;
        self.sync()
    }

    /// Total bytes written to the WAL so far (for write-amplification
    /// accounting in the evaluation harness).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Device syncs issued so far (fsyncs or simulated flushes).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// True once a [`SyncMode::CrashAt`] fault has dropped bytes.
    pub fn torn(&self) -> bool {
        self.torn
    }
}

/// Group-commit coordinator wrapped around one [`WalWriter`] (§5 of the
/// paper, extended across transactions): committers enqueue their records
/// and block until a flush covers them; the first committer to find no
/// flush in progress becomes the *flush leader*, optionally lingers
/// [`GroupCommitConfig::max_wait`] for more joiners, drains up to
/// [`GroupCommitConfig::max_batch`] records, writes them as one buffered
/// batch, issues a single sync for the whole group, then wakes everyone
/// whose records are now durable. Leadership is transient — it lasts for
/// one flush — so while a leader sits in `fsync`, newly arriving
/// committers queue up and the next leader flushes them all at once.
pub struct GroupWal {
    writer: Mutex<WalWriter>,
    queue: Mutex<GroupQueue>,
    queue_cv: Condvar,
    config: GroupCommitConfig,
    groups: AtomicU64,
    group_records: AtomicU64,
}

struct GroupQueue {
    /// Records accepted but not yet covered by a completed flush, in
    /// enqueue order (== epoch order: enqueues happen under the commit
    /// clock's tracker lock).
    pending: VecDeque<WalRecord>,
    /// Total records ever enqueued; a committer's ticket is this count
    /// right after its own records were pushed.
    enqueued: u64,
    /// Total records covered by completed flushes. `durable >= ticket`
    /// means that committer's records hit the device.
    durable: u64,
    /// True while some committer is draining/writing/syncing a batch.
    flush_in_progress: bool,
    /// Sticky first I/O failure: a WAL that can no longer persist must
    /// fail every later commit rather than ack writes it silently lost.
    poisoned: Option<String>,
}

impl GroupWal {
    /// Wraps an open writer in a group-commit coordinator.
    pub fn new(writer: WalWriter, config: GroupCommitConfig) -> Self {
        Self {
            writer: Mutex::new(writer),
            queue: Mutex::new(GroupQueue {
                pending: VecDeque::new(),
                enqueued: 0,
                durable: 0,
                flush_in_progress: false,
                poisoned: None,
            }),
            queue_cv: Condvar::new(),
            config,
            groups: AtomicU64::new(0),
            group_records: AtomicU64::new(0),
        }
    }

    /// Accepts a committer's records into the flush queue and returns the
    /// ticket to pass to [`GroupWal::wait_durable`]. Never blocks on I/O.
    /// Multi-record submissions stay contiguous in the log.
    pub fn enqueue(&self, records: Vec<WalRecord>) -> u64 {
        debug_assert!(!records.is_empty());
        let mut q = self.queue.lock();
        q.enqueued += records.len() as u64;
        q.pending.extend(records);
        let ticket = q.enqueued;
        // Wake a leader lingering for joiners (and idle followers, who
        // re-check and go back to sleep).
        self.queue_cv.notify_all();
        ticket
    }

    /// Blocks until every record at or below `ticket` is durable, flushing
    /// batches as the leader whenever no other flush is in progress.
    pub fn wait_durable(&self, ticket: u64) -> Result<()> {
        let mut q = self.queue.lock();
        loop {
            if q.durable >= ticket {
                return Ok(());
            }
            if let Some(msg) = &q.poisoned {
                return Err(Error::WalUnavailable(msg.clone()));
            }
            if q.flush_in_progress {
                // Follower: a leader's sync will cover us (or the next
                // leader will). Condvar handoff, no spinning.
                self.queue_cv.wait(&mut q);
                continue;
            }
            // Leader for one batch. Optionally linger for joiners.
            q.flush_in_progress = true;
            if !self.config.max_wait.is_zero() {
                let deadline = Instant::now() + self.config.max_wait;
                while q.pending.len() < self.config.max_batch {
                    let now = Instant::now();
                    if now >= deadline
                        || self
                            .queue_cv
                            .wait_for(&mut q, deadline - now)
                            .timed_out()
                    {
                        break;
                    }
                }
            }
            let take = q.pending.len().min(self.config.max_batch.max(1));
            let batch: Vec<WalRecord> = q.pending.drain(..take).collect();
            drop(q);
            let flushed = {
                let mut w = self.writer.lock();
                w.append_frames(&batch).and_then(|()| w.sync())
            };
            q = self.queue.lock();
            q.flush_in_progress = false;
            match flushed {
                Ok(()) => {
                    q.durable += batch.len() as u64;
                    // Statistics counters; durability itself is published
                    // via `q.durable` under the lock. Publication order
                    // matters for the *weak snapshot* invariant
                    // `group_records >= groups` (see `GraphStats`): bump
                    // the records first, then publish the group count.
                    // ORDERING: Relaxed — covered by the Release below;
                    // no reader may see `groups` without these records.
                    self.group_records
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    // ORDERING: Release pairs with the Acquire load in
                    // `stats()`, so a snapshot that observes this group
                    // also observes its records — every batch has ≥ 1
                    // record, making `group_records >= groups` hold in
                    // every snapshot.
                    self.groups.fetch_add(1, Ordering::Release);
                }
                Err(e) => {
                    // The drained records are gone and their committers
                    // must not be acked; fail them (and all later ones).
                    q.poisoned = Some(e.to_string());
                }
            }
            self.queue_cv.notify_all();
        }
    }

    /// Blocks until the count of durably flushed records differs from
    /// `last` (or the WAL is poisoned), or `timeout` elapses; returns the
    /// current count either way. WAL tails use this to sleep between polls
    /// instead of spinning: every flush (and every enqueue) signals the
    /// queue condvar, so a tail wakes as soon as new records can possibly
    /// be on the device.
    pub fn wait_durable_change(&self, last: u64, timeout: std::time::Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut q = self.queue.lock();
        while q.durable == last && q.poisoned.is_none() {
            let now = Instant::now();
            if now >= deadline || self.queue_cv.wait_for(&mut q, deadline - now).timed_out() {
                break;
            }
        }
        q.durable
    }

    /// Snapshot of the WAL counters (bytes, syncs, batches, tear flag).
    ///
    /// A *weak* snapshot: counters are read while flush leaders proceed,
    /// so fields may be mutually stale — but `group_records >= groups`
    /// holds in every snapshot (see the ordering argument below).
    pub fn stats(&self) -> WalStats {
        let w = self.writer.lock();
        // ORDERING: Acquire pairs with the Release bump in the flush
        // success path: observing a group implies observing its records,
        // so `group_records >= groups` below can never be violated by a
        // concurrent flush. `groups` must be loaded *first*.
        let groups = self.groups.load(Ordering::Acquire);
        WalStats {
            bytes: w.bytes_written(),
            fsyncs: w.fsyncs(),
            groups,
            // ORDERING: Relaxed — covered by the Acquire above.
            group_records: self.group_records.load(Ordering::Relaxed),
            torn: w.torn(),
        }
    }

    /// Runs `f` with the underlying writer locked (checkpoint pruning uses
    /// this to rewrite the log). Queued-but-unflushed records are *not*
    /// visible to `f`; they land after it returns, appended by their flush
    /// leader — correct for pruning, which only drops already-durable
    /// records at or below a snapshot epoch.
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut WalWriter) -> R) -> R {
        f(&mut self.writer.lock())
    }
}

/// Reads all complete, checksummed records from a WAL file.
///
/// A truncated or corrupt tail terminates the scan without an error (that is
/// the expected crash state); corruption *before* valid records is reported.
pub fn read_wal(path: &Path) -> Result<Vec<WalRecord>> {
    read_wal_from(path, 0).map(|(records, _)| records)
}

/// Reads complete records starting at byte `offset`, returning them together
/// with the offset just past the last complete frame (the resume point for
/// the next incremental read). This is the WAL-tailing primitive: `offset`
/// must be a frame boundary previously returned by this function (or 0).
pub fn read_wal_from(path: &Path, offset: u64) -> Result<(Vec<WalRecord>, u64)> {
    use std::io::{Seek, SeekFrom};
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 16 <= bytes.len() {
        let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if magic != RECORD_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let payload_start = pos + 8;
        let payload_end = payload_start + len;
        let frame_end = payload_end + 8;
        if frame_end > bytes.len() {
            break; // torn (or still being appended) tail
        }
        let payload = &bytes[payload_start..payload_end];
        let stored = u64::from_le_bytes(bytes[payload_end..frame_end].try_into().unwrap());
        if checksum(payload) != stored {
            break; // torn or corrupt tail
        }
        records.push(WalRecord::decode_payload(payload)?);
        pos = frame_end;
    }
    Ok((records, offset + pos as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(epoch: Timestamp) -> WalRecord {
        WalRecord {
            epoch,
            ops: vec![
                WalOp::CreateVertex {
                    vertex: 1,
                    properties: b"alice".to_vec(),
                },
                WalOp::PutEdge {
                    src: 1,
                    label: 3,
                    dst: 2,
                    properties: b"since 2020".to_vec(),
                },
                WalOp::DeleteEdge {
                    src: 1,
                    label: 3,
                    dst: 9,
                },
                WalOp::PutVertex {
                    vertex: 2,
                    properties: vec![],
                },
                WalOp::DeleteVertex { vertex: 9 },
            ],
        }
    }

    #[test]
    fn payload_roundtrip() {
        let rec = sample_record(12);
        let payload = rec.encode_payload();
        let decoded = WalRecord::decode_payload(&payload).unwrap();
        assert_eq!(rec, decoded);
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let rec = sample_record(12);
        let payload = rec.encode_payload();
        let err = WalRecord::decode_payload(&payload[..payload.len() - 3]).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path, SyncMode::Fsync).unwrap();
            w.append_group(&[sample_record(1), sample_record(2)]).unwrap();
            w.append_group(&[sample_record(3)]).unwrap();
            assert!(w.bytes_written() > 0);
        }
        let records = read_wal(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].epoch, 1);
        assert_eq!(records[2].epoch, 3);
    }

    #[test]
    fn torn_tail_is_discarded_but_prefix_survives() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path, SyncMode::NoSync).unwrap();
            w.append_group(&[sample_record(1), sample_record(2)]).unwrap();
        }
        // Simulate a crash mid-write of the next group.
        let len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&RECORD_MAGIC.to_le_bytes()).unwrap();
            f.write_all(&1000u32.to_le_bytes()).unwrap();
            f.write_all(b"partial").unwrap();
        }
        assert!(std::fs::metadata(&path).unwrap().len() > len);
        let records = read_wal(&path).unwrap();
        assert_eq!(records.len(), 2, "only the fsynced prefix must be replayed");
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path, SyncMode::NoSync).unwrap();
            w.append_group(&[sample_record(1), sample_record(2)]).unwrap();
        }
        // Flip a byte in the middle of the file (second record's payload).
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = bytes.len() - 20;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let records = read_wal(&path).unwrap();
        assert_eq!(records.len(), 1, "replay stops at the first bad checksum");
    }

    #[test]
    fn crash_at_drops_bytes_past_the_limit_but_keeps_acking() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        let full_len = {
            let probe = dir.path().join("probe.log");
            let mut w = WalWriter::open(&probe, SyncMode::NoSync).unwrap();
            w.append_group(&[sample_record(1)]).unwrap();
            w.append_group(&[sample_record(2)]).unwrap();
            w.bytes_written()
        };
        // Tear inside the second record's frame.
        let cut = full_len - 5;
        let mut w = WalWriter::open(&path, SyncMode::CrashAt(cut)).unwrap();
        w.append_group(&[sample_record(1)]).unwrap();
        assert!(!w.torn());
        w.append_group(&[sample_record(2)]).unwrap();
        assert!(w.torn(), "the cut lands inside the second frame");
        // The device keeps lying: later appends still report success and
        // write nothing.
        w.append_group(&[sample_record(3)]).unwrap();
        assert_eq!(w.bytes_written(), cut);
        drop(w);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), cut);
        let records = read_wal(&path).unwrap();
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![1],
            "only the intact prefix below the tear replays"
        );
    }

    #[test]
    fn group_wal_flushes_every_committer_and_batches_under_contention() {
        use std::sync::Arc;
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        let writer = WalWriter::open(&path, SyncMode::Fsync).unwrap();
        let wal = Arc::new(GroupWal::new(
            writer,
            GroupCommitConfig::default().with_max_batch(8),
        ));
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 16;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let ticket =
                            wal.enqueue(vec![sample_record((t * PER_THREAD + i + 1) as Timestamp)]);
                        wal.wait_durable(ticket).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.group_records, THREADS * PER_THREAD);
        assert_eq!(stats.fsyncs, stats.groups, "one fsync per flushed batch");
        assert!(!stats.torn);
        let mut epochs: Vec<_> = read_wal(&path).unwrap().iter().map(|r| r.epoch).collect();
        epochs.sort_unstable();
        assert_eq!(epochs, (1..=(THREADS * PER_THREAD) as Timestamp).collect::<Vec<_>>());
    }

    #[test]
    fn group_wal_linger_still_flushes_a_lone_committer() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        let writer = WalWriter::open(&path, SyncMode::NoSync).unwrap();
        let cfg = GroupCommitConfig::default()
            .with_max_batch(64)
            .with_max_wait(std::time::Duration::from_millis(5));
        let wal = GroupWal::new(writer, cfg);
        let ticket = wal.enqueue(vec![sample_record(1)]);
        wal.wait_durable(ticket).unwrap();
        assert_eq!(wal.stats().group_records, 1);
        assert_eq!(read_wal(&path).unwrap().len(), 1);
    }

    #[test]
    fn group_wal_multi_record_submission_stays_contiguous() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        let writer = WalWriter::open(&path, SyncMode::NoSync).unwrap();
        let wal = GroupWal::new(writer, GroupCommitConfig::default());
        let t1 = wal.enqueue(vec![sample_record(1), sample_record(2)]);
        let t2 = wal.enqueue(vec![sample_record(3)]);
        wal.wait_durable(t2).unwrap();
        wal.wait_durable(t1).unwrap();
        let epochs: Vec<_> = read_wal(&path).unwrap().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3], "enqueue order is file order");
    }

    #[test]
    fn reopening_appends_after_existing_records() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path, SyncMode::Fsync).unwrap();
            w.append_group(&[sample_record(1)]).unwrap();
        }
        {
            let mut w = WalWriter::open(&path, SyncMode::Fsync).unwrap();
            w.append_group(&[sample_record(2)]).unwrap();
        }
        let records = read_wal(&path).unwrap();
        assert_eq!(records.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![1, 2]);
    }
}
