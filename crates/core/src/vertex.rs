//! Vertex blocks: copy-on-write multi-versioned vertex property storage.
//!
//! §3/§4 of the paper: vertices are updated far less frequently than edges
//! and transactions typically read the latest version, so LiveGraph uses a
//! plain copy-on-write scheme. Each write creates a new vertex block holding
//! the full property payload plus a pointer to the previous version; the
//! vertex index is switched to the new block only at commit (apply phase),
//! so readers either see the old or the new version, never a mix.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use livegraph_storage::BlockPtr;

use crate::types::{Timestamp, TxnId, VertexId};

/// Size of the vertex block header in bytes.
pub const VERTEX_HEADER_SIZE: usize = 32;

// Header offsets.
const OFF_CREATION: usize = 0;
const OFF_PREV: usize = 8;
const OFF_LEN: usize = 16;
const OFF_ORDER: usize = 20;
const OFF_DELETED: usize = 21;
const OFF_ID: usize = 24;

/// An unowned view over a vertex block.
#[derive(Clone, Copy)]
pub struct VertexBlockRef<'a> {
    ptr: *mut u8,
    size: usize,
    _marker: PhantomData<&'a ()>,
}

impl<'a> VertexBlockRef<'a> {
    /// Wraps raw block memory as a vertex block.
    ///
    /// # Safety
    /// `ptr` must point to a block of `size` bytes valid for `'a`, 8-byte
    /// aligned, written only through this type once published.
    #[inline]
    pub unsafe fn from_raw(ptr: *mut u8, size: usize) -> Self {
        debug_assert!(size >= VERTEX_HEADER_SIZE);
        Self {
            ptr,
            size,
            _marker: PhantomData,
        }
    }

    /// Bytes needed for a vertex block holding `data_len` property bytes.
    #[inline]
    pub fn required_size(data_len: usize) -> usize {
        VERTEX_HEADER_SIZE + data_len
    }

    /// Initialises the block with the given payload and an unpublished
    /// (transaction-private) creation timestamp.
    pub fn init(
        &self,
        vertex: VertexId,
        creation_ts: Timestamp,
        prev: BlockPtr,
        order: u8,
        data: &[u8],
    ) {
        assert!(Self::required_size(data.len()) <= self.size);
        // SAFETY: in-bounds writes (size asserted above); the block is
        // still private to the creating transaction.
        unsafe {
            (self.ptr.add(OFF_PREV) as *mut u64).write(prev);
            (self.ptr.add(OFF_LEN) as *mut u32).write(data.len() as u32);
            self.ptr.add(OFF_ORDER).write(order);
            self.ptr.add(OFF_DELETED).write(0);
            (self.ptr.add(OFF_ID) as *mut u64).write(vertex);
            if !data.is_empty() {
                std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.add(VERTEX_HEADER_SIZE), data.len());
            }
        }
        // ORDERING: Release — header and payload writes above precede the
        // timestamp; pairs with the Acquire in `creation_ts`.
        self.creation_atomic().store(creation_ts, Ordering::Release);
    }

    #[inline]
    fn creation_atomic(&self) -> &AtomicI64 {
        // SAFETY: 8-byte aligned header field inside the block.
        unsafe { &*(self.ptr.add(OFF_CREATION) as *const AtomicI64) }
    }

    /// Creation timestamp of this version (negative while uncommitted).
    #[inline]
    pub fn creation_ts(&self) -> Timestamp {
        // ORDERING: Acquire pairs with the Release in `init` /
        // `set_creation_ts`; a committed (positive) ts implies the payload
        // is fully visible.
        self.creation_atomic().load(Ordering::Acquire)
    }

    /// Publishes the commit timestamp of this version (apply phase).
    #[inline]
    pub fn set_creation_ts(&self, ts: Timestamp) {
        // ORDERING: Release pairs with the Acquire in `creation_ts`.
        self.creation_atomic().store(ts, Ordering::Release);
    }

    /// Pointer to the previous version (or `NULL_BLOCK`).
    #[inline]
    pub fn prev_ptr(&self) -> BlockPtr {
        // SAFETY: 8-byte aligned header word; read atomically because the
        // compactor may clear it while readers walk the chain.
        // ORDERING: Acquire pairs with the Release in `set_prev_ptr`.
        unsafe { (*(self.ptr.add(OFF_PREV) as *const AtomicU64)).load(Ordering::Acquire) }
    }

    /// Updates the previous-version pointer (compaction trims the chain).
    #[inline]
    pub fn set_prev_ptr(&self, prev: BlockPtr) {
        // SAFETY: see `prev_ptr`.
        // ORDERING: Release pairs with the Acquire in `prev_ptr`.
        unsafe { (*(self.ptr.add(OFF_PREV) as *const AtomicU64)).store(prev, Ordering::Release) }
    }

    /// The vertex id this block belongs to.
    #[inline]
    pub fn vertex_id(&self) -> VertexId {
        // SAFETY: in-bounds header word, immutable once published.
        unsafe { (self.ptr.add(OFF_ID) as *const u64).read() }
    }

    /// Marks this version as a deletion tombstone. Only called before the
    /// block is published (while it is still transaction-private), so plain
    /// writes are sufficient.
    #[inline]
    pub fn mark_deleted(&self) {
        // SAFETY: in-bounds header byte; block still transaction-private.
        unsafe { self.ptr.add(OFF_DELETED).write(1) }
    }

    /// True if this version is a deletion tombstone: the vertex was deleted
    /// by the transaction that committed this version, so snapshots at or
    /// after its creation epoch treat the vertex as absent.
    #[inline]
    pub fn is_deleted(&self) -> bool {
        // SAFETY: in-bounds header byte, immutable once published.
        unsafe { self.ptr.add(OFF_DELETED).read() != 0 }
    }

    /// Size-class order of the block (needed to free it).
    #[inline]
    pub fn order(&self) -> u8 {
        // SAFETY: in-bounds header byte, immutable once published.
        unsafe { self.ptr.add(OFF_ORDER).read() }
    }

    /// The property payload.
    #[inline]
    pub fn data(&self) -> &'a [u8] {
        // SAFETY: in-bounds header word, immutable once published.
        let len = unsafe { (self.ptr.add(OFF_LEN) as *const u32).read() } as usize;
        debug_assert!(VERTEX_HEADER_SIZE + len <= self.size);
        // SAFETY: payload is immutable once the block is published.
        unsafe { std::slice::from_raw_parts(self.ptr.add(VERTEX_HEADER_SIZE), len) }
    }

    /// Is this version visible to a read at `tre` issued by `tid`?
    ///
    /// Mirrors [`crate::tel::entry_visible`] for the creation side; vertex
    /// versions are never invalidated in place — newer versions shadow older
    /// ones through the index / prev chain.
    #[inline]
    pub fn visible(&self, tre: Timestamp, tid: TxnId) -> bool {
        let c = self.creation_ts();
        (c > 0 && c <= tre) || (tid != 0 && c == -tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestBlock {
        buf: Vec<u64>,
        size: usize,
    }

    impl TestBlock {
        fn new(size: usize) -> Self {
            Self {
                buf: vec![0u64; size / 8],
                size,
            }
        }
        fn view(&self) -> VertexBlockRef<'_> {
            unsafe { VertexBlockRef::from_raw(self.buf.as_ptr() as *mut u8, self.size) }
        }
    }

    #[test]
    fn init_and_read_back() {
        let block = TestBlock::new(128);
        let v = block.view();
        v.init(17, -42, 0xBEEF, 1, b"{\"name\":\"ada\"}");
        assert_eq!(v.vertex_id(), 17);
        assert_eq!(v.creation_ts(), -42);
        assert_eq!(v.prev_ptr(), 0xBEEF);
        assert_eq!(v.order(), 1);
        assert_eq!(v.data(), b"{\"name\":\"ada\"}");
    }

    #[test]
    fn required_size_accounts_for_header() {
        assert_eq!(VertexBlockRef::required_size(0), VERTEX_HEADER_SIZE);
        assert_eq!(VertexBlockRef::required_size(100), VERTEX_HEADER_SIZE + 100);
    }

    #[test]
    fn visibility_follows_creation_timestamp() {
        let block = TestBlock::new(64);
        let v = block.view();
        v.init(1, -9, 0, 0, b"");
        // Uncommitted: visible only to its own transaction.
        assert!(v.visible(100, 9));
        assert!(!v.visible(100, 8));
        assert!(!v.visible(100, 0));
        // After commit at epoch 5:
        v.set_creation_ts(5);
        assert!(v.visible(5, 0));
        assert!(v.visible(6, 0));
        assert!(!v.visible(4, 0));
    }

    #[test]
    fn tombstone_flag_roundtrips() {
        let block = TestBlock::new(64);
        let v = block.view();
        v.init(4, -3, 0, 0, b"");
        assert!(!v.is_deleted(), "fresh versions are not tombstones");
        v.mark_deleted();
        assert!(v.is_deleted());
        // The flag shares the header with the other fields without clobbering
        // them.
        assert_eq!(v.vertex_id(), 4);
        assert_eq!(v.creation_ts(), -3);
        assert_eq!(v.order(), 0);
    }

    #[test]
    fn empty_payload_is_supported() {
        let block = TestBlock::new(64);
        let v = block.view();
        v.init(3, 1, 0, 0, &[]);
        assert_eq!(v.data(), b"");
    }

    #[test]
    #[should_panic]
    fn oversized_payload_panics() {
        let block = TestBlock::new(64);
        let v = block.view();
        v.init(3, 1, 0, 0, &[0u8; 64]);
    }
}
