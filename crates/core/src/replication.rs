//! Engine-level primitives for WAL-shipping replication.
//!
//! The service layer (`livegraph-server`) streams committed WAL records from
//! a primary to read replicas. This module supplies the engine halves of
//! that pipeline, and nothing network-specific:
//!
//! * **Primary side** — [`WalTail`], an incremental cursor over the
//!   primary's on-disk WAL that only ever hands out *complete epochs* of
//!   *durable, applied* records. The tail rides the group-commit flush
//!   signal, survives checkpoint pruning (the WAL file is atomically
//!   rewritten) via the writer's generation counter, and reports
//!   [`TailChunk::FellBehind`] when the records a subscriber still needs
//!   have been pruned — the signal to re-bootstrap instead of resuming.
//! * **Replica side** — [`LiveGraph::apply_replicated`], which replays
//!   shipped records through the normal write path, one transaction per
//!   epoch, so the replica consumes *exactly* the primary's epoch sequence
//!   and `begin_read_at(e)` observes bit-identical snapshots on both sides.
//!   Applied epochs are re-logged to the replica's own WAL, which is what
//!   makes replica restart (resume from the last locally durable epoch) and
//!   promotion (serve as a durable primary) work with no extra machinery.
//! * **Bootstrap** — [`LiveGraph::bootstrap_snapshot`] /
//!   [`install_bootstrap`] / [`local_durable_epoch`]: a replica initialises
//!   from a checkpoint file plus the WAL tail above the checkpoint epoch,
//!   never from unbounded WAL history.
//!
//! # Why "complete epochs at or below the GRE" is the safety rule
//!
//! One commit group is one epoch, but an epoch may span several WAL records
//! (one per member transaction), and group-commit flushes may split a group
//! across device writes. The engine orders durability before apply and
//! apply before GRE advance, so `GRE >= e` implies *every* record of epoch
//! `e` is already durable in the WAL file — and WAL file order is epoch
//! order. [`WalTail::poll`] therefore snapshots the GRE *before* reading
//! the file and emits only epochs at or below it, whole epochs at a time.
//! Each emitted batch is a gap-free run of complete epochs, which is
//! exactly what [`LiveGraph::apply_replicated`] needs to merge each epoch
//! into a single replayed transaction.

use std::collections::VecDeque;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::checkpoint::{apply_ops_in, checkpoint_path, wal_path};
use crate::error::{Error, Result};
use crate::graph::{GraphInner, LiveGraph};
use crate::types::Timestamp;
use crate::wal::{read_wal, read_wal_from, WalRecord};

/// What one [`WalTail::poll`] produced.
#[derive(Debug)]
pub enum TailChunk {
    /// New committed records: a gap-free run of one or more *complete*
    /// epochs, in epoch order, every one of them durable and applied on the
    /// primary.
    Records(Vec<WalRecord>),
    /// Checkpoint pruning removed epochs the tail has not yet handed out.
    /// The subscriber's resume point predates the retained WAL tail and it
    /// must re-bootstrap from a checkpoint at or above `floor`.
    FellBehind {
        /// The primary's current WAL prune floor (see
        /// [`LiveGraph::wal_prune_floor`]).
        floor: Timestamp,
    },
    /// No new complete epoch became available within the poll's wait
    /// budget.
    Idle,
}

/// Incremental reader over a durable graph's WAL, for replication.
///
/// Created by [`LiveGraph::wal_tail`]. The tail tracks a byte offset into
/// the log file plus the writer's rewrite generation, so it reads only new
/// bytes in the steady state and transparently re-scans after checkpoint
/// pruning replaces the file. See the module docs for the epoch-completeness
/// rule that `poll` enforces.
pub struct WalTail<'g> {
    graph: &'g GraphInner,
    /// Byte offset of the next unread frame, valid for `generation`.
    offset: u64,
    /// WAL writer generation `offset` was captured against (`u64::MAX`
    /// forces the initial full scan).
    generation: u64,
    /// Highest epoch handed out via [`TailChunk::Records`] (whole epochs
    /// only, so this is also "every record at or below this epoch has been
    /// handed out").
    last_epoch: Timestamp,
    /// Records read from the file but not yet emitted (their epoch is still
    /// above the GRE snapshot, or they overflowed a batch).
    buffered: VecDeque<WalRecord>,
    /// Last observed durable-record count, used to sleep on the group-commit
    /// flush condvar between polls.
    durable_mark: u64,
}

impl<'g> WalTail<'g> {
    fn new(graph: &'g GraphInner, from_epoch: Timestamp) -> Self {
        Self {
            graph,
            offset: 0,
            generation: u64::MAX,
            last_epoch: from_epoch,
            buffered: VecDeque::new(),
            durable_mark: u64::MAX,
        }
    }

    /// Highest epoch this tail has handed out (initially the `from_epoch`
    /// it was created with).
    pub fn last_epoch(&self) -> Timestamp {
        self.last_epoch
    }

    /// Waits up to `wait` for new committed epochs and returns them.
    ///
    /// At most `max_records` records are returned per call, except that an
    /// epoch is never split across calls: a batch always ends on an epoch
    /// boundary and always contains at least one whole epoch when anything
    /// is ready. Returns [`TailChunk::Idle`] on timeout and
    /// [`TailChunk::FellBehind`] once pruning has outrun this tail.
    pub fn poll(&mut self, max_records: usize, wait: Duration) -> Result<TailChunk> {
        let deadline = Instant::now() + wait;
        loop {
            // ORDERING: Acquire pairs with the AcqRel floor bump under the
            // WAL lock, so a stale floor can never accompany a pruned log.
            let floor = self
                .graph
                .prune_floor
                .load(std::sync::atomic::Ordering::Acquire);
            if floor > self.last_epoch {
                return Ok(TailChunk::FellBehind { floor });
            }
            // GRE snapshot *before* the file read: `gre >= e` proves every
            // record of epoch e was durable before we read, hence is in
            // `buffered` now. Emitting only epochs <= gre keeps batches to
            // complete epochs.
            let gre = self.graph.epochs.gre();
            self.refill()?;
            let out = self.drain_complete(max_records, gre);
            if !out.is_empty() {
                return Ok(TailChunk::Records(out));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(TailChunk::Idle);
            }
            let remaining = deadline - now;
            if self.buffered.is_empty() {
                // Nothing unread on disk: sleep on the flush signal.
                let wal = self.graph.commit.group_wal().ok_or_else(|| {
                    Error::WalUnavailable("WAL tailing requires a durable graph".into())
                })?;
                self.durable_mark = wal.wait_durable_change(self.durable_mark, remaining);
            } else {
                // Records exist but their epoch is still above the GRE:
                // the commit group is mid-apply and the GRE is about to
                // advance. A short nap, not a condvar, keeps this simple.
                std::thread::sleep(remaining.min(Duration::from_millis(1)));
            }
        }
    }

    /// Reads newly appended frames into `buffered`. Runs under the WAL
    /// writer lock so a concurrent checkpoint rewrite cannot swap the file
    /// between the generation check and the read.
    fn refill(&mut self) -> Result<()> {
        /// What one locked read hands back: the new records, the file
        /// offset after them, the WAL generation, and whether that
        /// generation changed (forcing a rescan dedup).
        type LockedRead = Option<(Vec<WalRecord>, u64, u64, bool)>;
        let offset = self.offset;
        let generation = self.generation;
        let last_epoch = self.last_epoch;
        let read = self.graph.commit.with_wal_locked(
            |writer| -> Result<LockedRead> {
                let Some(writer) = writer else {
                    return Ok(None);
                };
                let gen = writer.generation();
                let rescan = gen != generation;
                let from = if rescan { 0 } else { offset };
                if !rescan && !writer.path().exists() {
                    return Ok(Some((Vec::new(), offset, gen, false)));
                }
                let (records, new_offset) = read_wal_from(writer.path(), from)?;
                Ok(Some((records, new_offset, gen, rescan)))
            },
        )?;
        let Some((records, new_offset, gen, rescan)) = read else {
            return Err(Error::WalUnavailable(
                "WAL tailing requires a durable graph".into(),
            ));
        };
        if rescan {
            // The file was replaced (checkpoint pruning) or this is the
            // first scan. Everything already handed out is at or below
            // `last_epoch` — whole epochs only — so re-reading with that
            // filter is an exact dedup.
            self.buffered.clear();
            self.buffered
                .extend(records.into_iter().filter(|r| r.epoch > last_epoch));
        } else {
            self.buffered.extend(records);
        }
        self.offset = new_offset;
        self.generation = gen;
        Ok(())
    }

    /// Pops complete epochs at or below `gre` from `buffered`, respecting
    /// `max_records` only at epoch boundaries.
    fn drain_complete(&mut self, max_records: usize, gre: Timestamp) -> Vec<WalRecord> {
        let mut out: Vec<WalRecord> = Vec::new();
        while let Some(front) = self.buffered.front() {
            if front.epoch > gre {
                break;
            }
            let continues_epoch = out.last().is_some_and(|r| r.epoch == front.epoch);
            if out.len() >= max_records.max(1) && !continues_epoch {
                break;
            }
            let record = self.buffered.pop_front().expect("front exists");
            self.last_epoch = record.epoch;
            out.push(record);
        }
        out
    }
}

impl LiveGraph {
    /// Opens a WAL tail that yields committed records with epochs above
    /// `from_epoch`, for shipping to a replica. Requires a durable graph.
    ///
    /// Pass the replica's last durable epoch (see [`local_durable_epoch`])
    /// to resume an interrupted stream; the first [`WalTail::poll`] reports
    /// [`TailChunk::FellBehind`] if checkpoint pruning has already dropped
    /// epochs above `from_epoch`.
    pub fn wal_tail(&self, from_epoch: Timestamp) -> Result<WalTail<'_>> {
        if self.inner().commit.group_wal().is_none() {
            return Err(Error::WalUnavailable(
                "WAL tailing requires a durable graph".into(),
            ));
        }
        Ok(WalTail::new(self.inner(), from_epoch))
    }

    /// Replays records shipped from a primary, in epoch order, and returns
    /// the replica's global read epoch afterwards.
    ///
    /// All records of one epoch are applied in a single write transaction
    /// (a primary commit group's members had disjoint write sets, so the
    /// merge is conflict-free), which makes the replica consume exactly one
    /// epoch per primary epoch: after applying epoch `e`, this replica's
    /// `begin_read_at(e)` sees the same snapshot as the primary's. Epochs
    /// at or below the replica's write epoch are skipped, so redelivery
    /// after a reconnect is idempotent. The replayed epochs are re-logged
    /// to the replica's own WAL, keeping the replica durable in its own
    /// right (restart resume, promotion).
    pub fn apply_replicated(&self, records: &[WalRecord]) -> Result<Timestamp> {
        let graph = self.inner();
        let mut i = 0;
        while i < records.len() {
            let epoch = records[i].epoch;
            let mut j = i;
            while j < records.len() && records[j].epoch == epoch {
                j += 1;
            }
            let gwe = graph.epochs.gwe();
            if epoch <= gwe {
                i = j; // already applied (redelivery after reconnect)
                continue;
            }
            if epoch > gwe + 1 {
                // The primary consumed epochs this stream never carried
                // (it should not happen with a dense primary history, but a
                // gap must move the clock, not corrupt the mapping).
                graph.epochs.reset_to(epoch - 1);
            }
            let mut txn = crate::txn::WriteTxn::begin(graph)?;
            for record in &records[i..j] {
                apply_ops_in(graph, &mut txn, &record.ops)?;
            }
            let committed = txn.commit()?;
            if committed != epoch {
                return Err(Error::Corruption(format!(
                    "replica apply of epoch {epoch} committed as epoch {committed}"
                )));
            }
            i = j;
        }
        Ok(graph.epochs.gre())
    }

    /// Writes a fresh checkpoint and returns `(snapshot_epoch, bytes)` — the
    /// checkpoint file's contents — for shipping to a bootstrapping replica.
    ///
    /// Checkpointing also prunes the WAL, so the primary's retained log
    /// after this call is exactly the tail above `snapshot_epoch`: the
    /// replica installs the bytes via [`install_bootstrap`] and then streams
    /// from a [`LiveGraph::wal_tail`] at `snapshot_epoch`, never replaying
    /// unbounded history.
    pub fn bootstrap_snapshot(&self) -> Result<(Timestamp, Vec<u8>)> {
        let graph = self.inner();
        let epoch = crate::checkpoint::write_checkpoint(graph)?;
        let dir = graph
            .options
            .data_dir
            .as_ref()
            .expect("write_checkpoint verified the data dir");
        let bytes = std::fs::read(checkpoint_path(dir))?;
        Ok((epoch, bytes))
    }
}

/// Installs a shipped checkpoint into a replica data directory: the bytes
/// become `checkpoint.dat` (via a temp file + atomic rename) and any stale
/// WAL is removed. Opening a [`LiveGraph`] on the directory afterwards runs
/// ordinary recovery, which replays the checkpoint — the replica bootstraps
/// through the exact code path a crashed primary restarts through.
///
/// Must only be called before the replica engine is opened on `dir`.
pub fn install_bootstrap(dir: impl AsRef<Path>, bytes: &[u8]) -> Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join("checkpoint.tmp");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, checkpoint_path(dir))?;
    let _ = std::fs::remove_file(wal_path(dir));
    Ok(())
}

/// The highest epoch durably recorded in a data directory (checkpoint and
/// WAL combined), or 0 for an empty/absent directory. A restarting replica
/// reports this as its resume point so the primary ships only what is
/// missing.
pub fn local_durable_epoch(dir: impl AsRef<Path>) -> Result<Timestamp> {
    let dir = dir.as_ref();
    let mut max: Timestamp = 0;
    for path in [checkpoint_path(dir), wal_path(dir)] {
        if path.exists() {
            for record in read_wal(&path)? {
                max = max.max(record.epoch);
            }
        }
    }
    Ok(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LiveGraph, LiveGraphOptions};
    use crate::wal::SyncMode;

    fn durable_options(dir: &std::path::Path) -> LiveGraphOptions {
        LiveGraphOptions::durable(dir)
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 14)
            .with_sync_mode(SyncMode::NoSync)
            .with_history_retention(1 << 20)
    }

    fn commit_pair(g: &LiveGraph, tag: u8) -> (u64, u64) {
        let mut txn = g.begin_write().unwrap();
        let a = txn.create_vertex(&[tag]).unwrap();
        let b = txn.create_vertex(&[tag, tag]).unwrap();
        txn.put_edge(a, 0, b, &[tag]).unwrap();
        txn.commit().unwrap();
        (a, b)
    }

    fn poll_all(tail: &mut WalTail<'_>) -> Vec<WalRecord> {
        match tail.poll(1024, Duration::from_secs(5)).unwrap() {
            TailChunk::Records(r) => r,
            other => panic!("expected records, got {other:?}"),
        }
    }

    /// Every vertex/edge visible at `epoch` must match between the graphs.
    fn assert_same_snapshot(primary: &LiveGraph, replica: &LiveGraph, epoch: Timestamp) {
        let pr = primary.begin_read_at(epoch).unwrap();
        let rr = replica.begin_read_at(epoch).unwrap();
        let n = primary.vertex_count().max(replica.vertex_count());
        for v in 0..n {
            assert_eq!(pr.get_vertex(v), rr.get_vertex(v), "vertex {v} @ {epoch}");
            for label in pr.labels(v).collect::<Vec<_>>() {
                let pe: Vec<_> = pr.edges(v, label).map(|e| e.dst).collect();
                let re: Vec<_> = rr.edges(v, label).map(|e| e.dst).collect();
                assert_eq!(pe, re, "edges of ({v},{label}) @ {epoch}");
            }
        }
    }

    #[test]
    fn tail_ships_and_replica_applies_every_epoch() {
        let pdir = tempfile::tempdir().unwrap();
        let rdir = tempfile::tempdir().unwrap();
        let primary = LiveGraph::open(durable_options(pdir.path())).unwrap();
        let replica = LiveGraph::open(durable_options(rdir.path())).unwrap();
        for tag in 0..5u8 {
            commit_pair(&primary, tag);
        }
        let mut tail = primary.wal_tail(0).unwrap();
        let records = poll_all(&mut tail);
        let epochs: Vec<_> = records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3, 4, 5], "epoch order, no gaps");
        let gre = replica.apply_replicated(&records).unwrap();
        assert_eq!(gre, 5, "replica consumed exactly the primary's epochs");
        for e in 1..=5 {
            assert_same_snapshot(&primary, &replica, e);
        }
        // Idempotent redelivery: applying the same batch again is a no-op.
        assert_eq!(replica.apply_replicated(&records).unwrap(), 5);
        assert_eq!(replica.stats().write_epoch, 5);
    }

    #[test]
    fn tail_survives_checkpoint_pruning_via_generation_bump() {
        let dir = tempfile::tempdir().unwrap();
        let primary = LiveGraph::open(durable_options(dir.path())).unwrap();
        commit_pair(&primary, 1);
        commit_pair(&primary, 2);
        let mut tail = primary.wal_tail(0).unwrap();
        assert_eq!(poll_all(&mut tail).len(), 2);
        // Prune everything the tail already consumed, then write more.
        primary.checkpoint().unwrap();
        assert_eq!(primary.wal_prune_floor(), 2);
        commit_pair(&primary, 3);
        let records = poll_all(&mut tail);
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![3],
            "only the unseen epoch, despite the file rewrite"
        );
    }

    #[test]
    fn tail_reports_fell_behind_when_pruning_outruns_it() {
        let dir = tempfile::tempdir().unwrap();
        let primary = LiveGraph::open(durable_options(dir.path())).unwrap();
        commit_pair(&primary, 1);
        commit_pair(&primary, 2);
        primary.checkpoint().unwrap();
        let mut tail = primary.wal_tail(0).unwrap();
        match tail.poll(1024, Duration::from_millis(10)).unwrap() {
            TailChunk::FellBehind { floor } => assert_eq!(floor, 2),
            other => panic!("expected FellBehind, got {other:?}"),
        }
        // Resuming at the floor works: only post-checkpoint epochs ship.
        let mut tail = primary.wal_tail(2).unwrap();
        commit_pair(&primary, 3);
        assert_eq!(poll_all(&mut tail)[0].epoch, 3);
    }

    #[test]
    fn tail_idles_out_when_nothing_commits() {
        let dir = tempfile::tempdir().unwrap();
        let primary = LiveGraph::open(durable_options(dir.path())).unwrap();
        let mut tail = primary.wal_tail(0).unwrap();
        let start = Instant::now();
        assert!(matches!(
            tail.poll(16, Duration::from_millis(20)).unwrap(),
            TailChunk::Idle
        ));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn wal_tail_requires_durability() {
        let g = LiveGraph::in_memory().unwrap();
        assert!(matches!(g.wal_tail(0), Err(Error::WalUnavailable(_))));
    }

    #[test]
    fn bootstrap_ships_checkpoint_not_history() {
        let pdir = tempfile::tempdir().unwrap();
        let rdir = tempfile::tempdir().unwrap();
        let primary = LiveGraph::open(durable_options(pdir.path())).unwrap();
        for tag in 0..4u8 {
            commit_pair(&primary, tag);
        }
        let (snapshot_epoch, bytes) = primary.bootstrap_snapshot().unwrap();
        assert_eq!(snapshot_epoch, 4);
        assert_eq!(
            primary.wal_prune_floor(),
            snapshot_epoch,
            "bootstrap checkpoint prunes the WAL to a bounded tail"
        );
        commit_pair(&primary, 9); // epoch 5, lives only in the WAL tail

        install_bootstrap(rdir.path(), &bytes).unwrap();
        assert_eq!(local_durable_epoch(rdir.path()).unwrap(), snapshot_epoch);
        let replica = LiveGraph::open(durable_options(rdir.path())).unwrap();
        assert_eq!(replica.stats().write_epoch, snapshot_epoch);

        // Catch up from the snapshot epoch: exactly the WAL tail ships.
        let mut tail = primary.wal_tail(snapshot_epoch).unwrap();
        let records = poll_all(&mut tail);
        assert_eq!(records.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![5]);
        replica.apply_replicated(&records).unwrap();
        assert_same_snapshot(&primary, &replica, 5);

        // The replica's own durable state now covers the applied epoch, so
        // a restarted replica would resume from 5, not re-bootstrap.
        drop(replica);
        assert_eq!(local_durable_epoch(rdir.path()).unwrap(), 5);
        let reopened = LiveGraph::open(durable_options(rdir.path())).unwrap();
        assert_eq!(reopened.stats().write_epoch, 5);
        assert_same_snapshot(&primary, &reopened, 5);
    }

    #[test]
    fn concurrent_commits_ship_complete_epochs_in_order() {
        let pdir = tempfile::tempdir().unwrap();
        let rdir = tempfile::tempdir().unwrap();
        let primary = LiveGraph::open(durable_options(pdir.path())).unwrap();
        let replica = LiveGraph::open(durable_options(rdir.path())).unwrap();

        let stop = std::sync::atomic::AtomicBool::new(false);
        let applied = std::thread::scope(|s| {
            // Writers hammer the primary while the tail streams concurrently.
            let writers: Vec<_> = (0..4u8)
                .map(|t| {
                    let primary = &primary;
                    s.spawn(move || {
                        for i in 0..40u8 {
                            commit_pair(primary, t.wrapping_mul(40).wrapping_add(i));
                        }
                    })
                })
                .collect();
            let shipper = s.spawn(|| {
                let mut tail = primary.wal_tail(0).unwrap();
                let mut shipped: Vec<WalRecord> = Vec::new();
                loop {
                    match tail.poll(7, Duration::from_millis(20)).unwrap() {
                        TailChunk::Records(batch) => {
                            replica.apply_replicated(&batch).unwrap();
                            shipped.extend(batch);
                        }
                        TailChunk::Idle => {
                            if stop.load(std::sync::atomic::Ordering::Acquire) {
                                break;
                            }
                        }
                        TailChunk::FellBehind { .. } => panic!("no pruning in this test"),
                    }
                }
                shipped
            });
            for handle in writers {
                handle.join().unwrap();
            }
            // Writers are done; the shipper drains whatever remains, then
            // sees `stop` on its next idle poll.
            stop.store(true, std::sync::atomic::Ordering::Release);
            shipper.join().unwrap()
        });

        let final_epoch = primary.stats().write_epoch;
        assert_eq!(applied.last().unwrap().epoch, final_epoch);
        // Emitted epochs are non-decreasing and gap-free.
        let mut prev = 0;
        for r in &applied {
            assert!(r.epoch == prev || r.epoch == prev + 1, "gap at {}", r.epoch);
            prev = r.epoch;
        }
        for e in [1, final_epoch / 2, final_epoch] {
            assert_same_snapshot(&primary, &replica, e);
        }
    }
}
