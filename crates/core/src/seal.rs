//! The TEL **seal protocol**, factored out of [`crate::tel`] so the exact
//! load/store discipline is written once and shared between:
//!
//! * the production TEL header, whose words live inside raw block memory
//!   and are pointer-cast to `std` atomics ([`crate::tel::TelRef`]
//!   implements [`SealWords`] over them), and
//! * [`SealCell`], a facade-atomics implementation that the loom model
//!   tests drive through exhaustive interleaving exploration (see
//!   `crates/core/tests/model_seal.rs`).
//!
//! The protocol (paper §4.3, "sealed" fast path): the apply phase of a
//! commit at epoch `E` publishes, in order, the commit timestamp `CT`,
//! then the log/property sizes `LS`/`PS`, then the invalidation summary.
//! Readers check the seal in the *reverse* order — summary, then `LS`,
//! then `CT` last. The pairing gives the key torn-read guarantee: if any
//! of the reader's earlier loads observed state from an in-flight commit,
//! the release/acquire chain through that observed word forces the final
//! `CT` load to observe `E` as well, and `E > TRE` for any commit the
//! snapshot does not cover — so the reader falls back to the per-entry
//! checked scan instead of trusting a torn log size. The loom test
//! `model_seal.rs` pins exactly this property, and its seeded-bug twin
//! proves the checker rejects the reversed store order.

use crate::sync::atomic::Ordering;
use crate::types::Timestamp;

/// The four header words the seal protocol coordinates, exposed as
/// ordering-parameterized accessors so the protocol functions below own
/// every ordering decision. Implementations are dumb word accessors:
/// `TelRef` over in-place `std` atomics, [`SealCell`] over facade atomics.
pub trait SealWords {
    /// Loads the commit timestamp (`CT`): epoch of the last applied commit.
    fn commit_ts_load(&self, order: Ordering) -> Timestamp;
    /// Stores the commit timestamp.
    fn commit_ts_store(&self, ts: Timestamp, order: Ordering);
    /// Loads the committed log size in bytes (`LS`).
    fn log_size_load(&self, order: Ordering) -> u64;
    /// Stores the committed log size.
    fn log_size_store(&self, bytes: u64, order: Ordering);
    /// Loads the committed-invalidation count (the seal summary).
    fn inv_count_load(&self, order: Ordering) -> u32;
    /// Stores the committed-invalidation count.
    fn inv_count_store(&self, count: u32, order: Ordering);
    /// Adds to the committed-invalidation count; returns the prior count.
    fn inv_count_fetch_add(&self, count: u32, order: Ordering) -> u32;
    /// Loads the largest invalidating epoch (informational).
    fn max_inv_load(&self, order: Ordering) -> Timestamp;
    /// Stores the largest invalidating epoch.
    fn max_inv_store(&self, ts: Timestamp, order: Ordering);
    /// Raises the largest invalidating epoch; returns the prior value.
    fn max_inv_fetch_max(&self, ts: Timestamp, order: Ordering) -> Timestamp;
}

/// Apply-phase publication of a commit at `epoch` whose committed log now
/// spans `log_bytes`: `CT` first, then `LS`.
///
/// Any invalidations must be recorded *after* this via
/// [`record_invalidations`] — never before — so that a reader observing
/// the inflated summary necessarily observes `CT = epoch` too.
#[inline]
pub fn publish_commit<W: SealWords + ?Sized>(w: &W, epoch: Timestamp, log_bytes: u64) {
    // ORDERING: Release on both stores, CT strictly first. A reader's
    // Acquire load of LS (or of the summary stored later) that observes
    // this commit synchronizes-with the store and therefore forces its
    // subsequent CT load to observe `epoch`, triggering the CT > TRE
    // fallback for uncovered commits. Storing LS before CT would let a
    // reader seal a torn log size — the model test's seeded-bug twin.
    w.commit_ts_store(epoch, Ordering::Release);
    w.log_size_store(log_bytes, Ordering::Release);
}

/// Apply-phase accounting of `count` freshly committed invalidations at
/// `epoch`. Must be called *after* [`publish_commit`] for the same epoch:
/// readers load the summary first and `CT` last, so an inflated summary is
/// detected via `CT > TRE`, while a stale summary is impossible for epochs
/// the reader's snapshot covers (GRE only advances past `epoch` once the
/// whole apply — including this call — has finished).
#[inline]
pub fn record_invalidations<W: SealWords + ?Sized>(w: &W, count: u32, epoch: Timestamp) {
    if count == 0 {
        return;
    }
    // ORDERING: AcqRel RMWs — the release half keeps these ordered after
    // the CT/LS publication on the reader's acquire chain; the acquire
    // half orders concurrent appliers' summary updates with each other.
    w.max_inv_fetch_max(epoch, Ordering::AcqRel);
    w.inv_count_fetch_add(count, Ordering::AcqRel);
}

/// Wholesale summary overwrite. Only valid while no concurrent writer can
/// touch the TEL (init, block upgrade, compaction rewrite — all run under
/// the vertex lock or on private blocks).
#[inline]
pub fn reset_summary<W: SealWords + ?Sized>(w: &W, count: u32, max_ts: Timestamp) {
    // ORDERING: Release stores publish the rewritten summary to readers
    // that discover the block afterwards; mutual exclusion with writers is
    // the caller's precondition, so no RMW is needed.
    w.inv_count_store(count, Ordering::Release);
    w.max_inv_store(max_ts, Ordering::Release);
}

/// Snapshot-coverage check for a reader at epoch `tre`: when the last
/// applied commit is covered (`CT <= tre`), returns the committed log size
/// and invalidation count; otherwise the caller must use the checked scan.
///
/// Load order matters (summary, then `LS`, then `CT` **last**) — see the
/// module docs for why this pairing with [`publish_commit`] makes torn
/// reads self-detecting.
#[inline]
pub fn covered_log<W: SealWords + ?Sized>(w: &W, tre: Timestamp) -> Option<(u64, u32)> {
    // ORDERING: Acquire loads, summary first and CT last — the mirror
    // image of the apply phase's store order. The final CT load is the
    // guard: any torn observation of the earlier words implies this load
    // observes the in-flight commit's epoch (> tre) and we bail out.
    let inv = w.inv_count_load(Ordering::Acquire);
    let log = w.log_size_load(Ordering::Acquire);
    let ct = w.commit_ts_load(Ordering::Acquire);
    if ct <= tre {
        Some((log, inv))
    } else {
        None
    }
}

/// Seal check: the committed log size, provided **every** entry in it is
/// visible at `tre` without per-entry checks — the last commit is covered
/// and no committed invalidation exists.
#[inline]
pub fn try_seal<W: SealWords + ?Sized>(w: &W, tre: Timestamp) -> Option<u64> {
    match covered_log(w, tre) {
        Some((log, 0)) => Some(log),
        _ => None,
    }
}

/// [`SealWords`] over facade atomics: the implementation the loom model
/// tests explore. Under a normal build this is plain `std` atomics and is
/// also used by this module's unit tests; it is not wired into the engine.
#[derive(Debug, Default)]
pub struct SealCell {
    commit_ts: crate::sync::atomic::AtomicI64,
    log_size: crate::sync::atomic::AtomicU64,
    inv_count: crate::sync::atomic::AtomicU32,
    max_inv: crate::sync::atomic::AtomicI64,
}

impl SealCell {
    /// A cell in the freshly-initialized state (`CT = 0`, empty log).
    pub fn new() -> Self {
        SealCell {
            commit_ts: crate::sync::atomic::AtomicI64::new(0),
            log_size: crate::sync::atomic::AtomicU64::new(0),
            inv_count: crate::sync::atomic::AtomicU32::new(0),
            max_inv: crate::sync::atomic::AtomicI64::new(0),
        }
    }
}

impl SealWords for SealCell {
    fn commit_ts_load(&self, order: Ordering) -> Timestamp {
        self.commit_ts.load(order)
    }
    fn commit_ts_store(&self, ts: Timestamp, order: Ordering) {
        self.commit_ts.store(ts, order)
    }
    fn log_size_load(&self, order: Ordering) -> u64 {
        self.log_size.load(order)
    }
    fn log_size_store(&self, bytes: u64, order: Ordering) {
        self.log_size.store(bytes, order)
    }
    fn inv_count_load(&self, order: Ordering) -> u32 {
        self.inv_count.load(order)
    }
    fn inv_count_store(&self, count: u32, order: Ordering) {
        self.inv_count.store(count, order)
    }
    fn inv_count_fetch_add(&self, count: u32, order: Ordering) -> u32 {
        self.inv_count.fetch_add(count, order)
    }
    fn max_inv_load(&self, order: Ordering) -> Timestamp {
        self.max_inv.load(order)
    }
    fn max_inv_store(&self, ts: Timestamp, order: Ordering) {
        self.max_inv.store(ts, order)
    }
    fn max_inv_fetch_max(&self, ts: Timestamp, order: Ordering) -> Timestamp {
        self.max_inv.fetch_max(ts, order)
    }
}

#[cfg(all(test, not(livegraph_loom)))]
mod tests {
    use super::*;

    #[test]
    fn seal_requires_coverage_and_clean_summary() {
        let c = SealCell::new();
        publish_commit(&c, 5, 128);
        assert_eq!(try_seal(&c, 4), None, "uncovered commit must not seal");
        assert_eq!(try_seal(&c, 5), Some(128));
        record_invalidations(&c, 2, 5);
        assert_eq!(try_seal(&c, 5), None, "dirty summary must not seal");
        assert_eq!(covered_log(&c, 5), Some((128, 2)));
        reset_summary(&c, 0, 0);
        assert_eq!(try_seal(&c, 9), Some(128));
    }

    #[test]
    fn record_invalidations_accumulates_and_tracks_max() {
        let c = SealCell::new();
        record_invalidations(&c, 0, 7);
        assert_eq!(c.inv_count_load(Ordering::Acquire), 0);
        record_invalidations(&c, 2, 7);
        record_invalidations(&c, 1, 3);
        assert_eq!(c.inv_count_load(Ordering::Acquire), 3);
        assert_eq!(c.max_inv_load(Ordering::Acquire), 7);
    }
}
