//! Per-vertex write locks.
//!
//! §5 of the paper: write-write conflicts are detected with per-vertex locks
//! kept in a large pre-allocated (`mmap`-backed) array of word-sized lock
//! entries — the authors found a futex array more scalable than spinlocks or
//! concurrent hash tables because waiters sleep instead of burning cycles.
//!
//! We mirror that design with an anonymous [`Region`] of `AtomicU32` words
//! (pages are committed lazily, so reserving one word per possible vertex is
//! cheap). Lock acquisition spins briefly, then backs off with short sleeps
//! (the parking role of the futex) until a deadlock-avoidance timeout
//! expires, at which point the transaction aborts and retries — the paper's
//! timeout mechanism.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use livegraph_storage::Region;

use crate::error::Result;
use crate::types::VertexId;

const UNLOCKED: u32 = 0;
const LOCKED: u32 = 1;

/// A table of per-vertex word locks.
pub struct VertexLockTable {
    region: Region,
    capacity: usize,
}

impl VertexLockTable {
    /// Reserves a lock table for `capacity` vertices.
    pub fn new(capacity: usize) -> Result<Self> {
        let region = Region::anonymous(capacity * 4)?;
        Ok(Self { region, capacity })
    }

    /// Number of lockable vertices.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn word(&self, vertex: VertexId) -> &AtomicU32 {
        debug_assert!((vertex as usize) < self.capacity);
        // SAFETY: in-range, 4-byte aligned, zero-initialised (= UNLOCKED).
        unsafe { &*(self.region.as_ptr().add(vertex as usize * 4) as *const AtomicU32) }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self, vertex: VertexId) -> bool {
        // ORDERING: Acquire on success pairs with the Release in `unlock`,
        // so the new holder sees the previous holder's writes; Relaxed on
        // failure — nothing is learned from a lost race.
        self.word(vertex)
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Acquires the lock, giving up after `timeout` (deadlock avoidance).
    ///
    /// Returns `true` on success. The caller (a write transaction) must
    /// abort and roll back when this returns `false`.
    pub fn lock_with_timeout(&self, vertex: VertexId, timeout: Duration) -> bool {
        // Fast path + bounded spin: uncontended locks are the overwhelmingly
        // common case because conflicts are per-vertex.
        for _ in 0..64 {
            if self.try_lock(vertex) {
                return true;
            }
            std::hint::spin_loop();
        }
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_micros(5);
        loop {
            if self.try_lock(vertex) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            // Futex-style wait: sleep instead of spinning so that heavy
            // contention does not waste CPU (§5: "futex-based
            // implementations utilize CPU cycles better by putting waiters
            // to sleep").
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_micros(200));
        }
    }

    /// Releases a lock previously acquired on `vertex`.
    #[inline]
    pub fn unlock(&self, vertex: VertexId) {
        debug_assert!(self.is_locked(vertex), "unlock of an unlocked vertex");
        // ORDERING: Release pairs with the Acquire in `try_lock`,
        // publishing the critical section to the next holder.
        let prev = self.word(vertex).swap(UNLOCKED, Ordering::Release);
        debug_assert_eq!(prev, LOCKED, "unlock of an unlocked vertex");
    }

    /// True if the vertex is currently locked (diagnostics only).
    #[inline]
    pub fn is_locked(&self, vertex: VertexId) -> bool {
        // ORDERING: Relaxed — diagnostics only, no decision rides on it.
        self.word(vertex).load(Ordering::Relaxed) == LOCKED
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_roundtrip() {
        let table = VertexLockTable::new(128).unwrap();
        assert!(table.try_lock(5));
        assert!(table.is_locked(5));
        assert!(!table.try_lock(5), "second acquisition must fail");
        table.unlock(5);
        assert!(!table.is_locked(5));
        assert!(table.try_lock(5));
        table.unlock(5);
    }

    #[test]
    fn locks_are_independent_per_vertex() {
        let table = VertexLockTable::new(128).unwrap();
        assert!(table.try_lock(1));
        assert!(table.try_lock(2));
        assert!(table.try_lock(127));
        table.unlock(1);
        table.unlock(2);
        table.unlock(127);
    }

    #[test]
    fn lock_with_timeout_gives_up() {
        let table = VertexLockTable::new(16).unwrap();
        assert!(table.try_lock(3));
        let start = Instant::now();
        let acquired = table.lock_with_timeout(3, Duration::from_millis(20));
        assert!(!acquired);
        assert!(start.elapsed() >= Duration::from_millis(20));
        table.unlock(3);
        assert!(table.lock_with_timeout(3, Duration::from_millis(20)));
        table.unlock(3);
    }

    #[test]
    fn contended_lock_is_eventually_acquired() {
        let table = Arc::new(VertexLockTable::new(16).unwrap());
        assert!(table.try_lock(7));
        let t2 = Arc::clone(&table);
        let handle = std::thread::spawn(move || t2.lock_with_timeout(7, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        table.unlock(7);
        assert!(handle.join().unwrap(), "waiter must eventually acquire");
        table.unlock(7);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let table = Arc::new(VertexLockTable::new(4).unwrap());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let table = Arc::clone(&table);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    assert!(table.lock_with_timeout(0, Duration::from_secs(10)));
                    // Non-atomic-like critical section emulated with two
                    // ordered atomic ops; violation would show as a torn
                    // counter (odd intermediate observed by another thread).
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    table.unlock(0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 200);
    }
}
