//! Error types for the LiveGraph engine.

use std::fmt;
use std::io;

use crate::types::VertexId;

/// Errors returned by LiveGraph operations.
#[derive(Debug)]
pub enum Error {
    /// A write-write conflict: the target vertex or adjacency list was
    /// modified by a transaction that committed after this transaction's
    /// read epoch (first-updater-wins under snapshot isolation), or the
    /// per-vertex lock could not be acquired before the deadlock-avoidance
    /// timeout expired. The transaction has been rolled back and can be
    /// retried.
    WriteConflict {
        /// The vertex whose lock / adjacency list caused the conflict.
        vertex: VertexId,
    },
    /// The referenced vertex does not exist (was never created or lies
    /// beyond the allocated id space).
    VertexNotFound(VertexId),
    /// The transaction was already committed or aborted.
    TransactionClosed,
    /// The underlying block store ran out of space or failed.
    Storage(livegraph_storage::StorageError),
    /// WAL / checkpoint I/O failure.
    Io(io::Error),
    /// The WAL suffered a write failure earlier and refuses further
    /// commits: a log that silently lost records must not ack new ones.
    /// The string is the original failure's message.
    WalUnavailable(String),
    /// A corrupted WAL or checkpoint record was encountered during recovery.
    Corruption(String),
    /// Too many concurrent worker threads for the configured worker-table
    /// size.
    TooManyWorkers {
        /// Configured maximum number of worker slots.
        max_workers: usize,
    },
    /// A time-travel read requested an epoch that is not available: either
    /// it lies in the future (greater than the current global read epoch)
    /// or it is negative.
    EpochUnavailable {
        /// The epoch the caller asked for.
        requested: crate::types::Timestamp,
        /// The newest epoch a read can currently be pinned at.
        newest: crate::types::Timestamp,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::WriteConflict { vertex } => {
                write!(f, "write-write conflict on vertex {vertex}")
            }
            Error::VertexNotFound(v) => write!(f, "vertex {v} not found"),
            Error::TransactionClosed => write!(f, "transaction already committed or aborted"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::WalUnavailable(msg) => {
                write!(f, "WAL unavailable after earlier write failure: {msg}")
            }
            Error::Corruption(msg) => write!(f, "corrupted log or checkpoint: {msg}"),
            Error::TooManyWorkers { max_workers } => {
                write!(f, "too many concurrent workers (max {max_workers})")
            }
            Error::EpochUnavailable { requested, newest } => {
                write!(
                    f,
                    "epoch {requested} is not readable (newest committed epoch is {newest})"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<livegraph_storage::StorageError> for Error {
    fn from(e: livegraph_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias for LiveGraph operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_details() {
        assert!(Error::WriteConflict { vertex: 42 }.to_string().contains("42"));
        assert!(Error::VertexNotFound(7).to_string().contains('7'));
        assert!(Error::TooManyWorkers { max_workers: 8 }
            .to_string()
            .contains('8'));
        assert!(Error::EpochUnavailable { requested: 99, newest: 5 }
            .to_string()
            .contains("99"));
        assert!(Error::Corruption("bad length".into())
            .to_string()
            .contains("bad length"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: Error = io::Error::other("disk gone").into();
        assert!(std::error::Error::source(&e).is_some());
        let s: Error = livegraph_storage::StorageError::OutOfSpace {
            requested: 1,
            capacity: 0,
        }
        .into();
        assert!(matches!(s, Error::Storage(_)));
    }
}
