//! Global epochs, worker slots and the reading-epoch table.
//!
//! §5 of the paper: all threads share two global epoch counters — `GRE` (the
//! read epoch handed to starting transactions) and `GWE` (the write epoch
//! advanced by the transaction manager for every commit group) — plus a
//! *reading epoch table* with one slot per worker, used by compaction to
//! compute a safe timestamp below which old versions can be reclaimed.
//!
//! Each OS thread that starts transactions is lazily assigned a *worker
//! slot*. The slot index feeds into transaction ids (`TID = worker ‖ seq`),
//! the reading-epoch table and the per-worker dirty sets used by compaction.

use crate::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

use crate::error::{Error, Result};
use crate::types::{make_txn_id, Timestamp, TxnId};

/// Value stored in a reading-epoch slot when the worker has no active
/// transaction.
pub const IDLE_EPOCH: i64 = i64::MAX;

/// Global epoch state shared by all transactions of one [`crate::LiveGraph`].
pub struct EpochManager {
    /// Global read epoch: the snapshot new transactions read.
    gre: AtomicI64,
    /// Global write epoch: advanced once per commit group.
    gwe: AtomicI64,
    /// Reading-epoch table: `slots[w]` holds the smallest read epoch of
    /// worker `w`'s active transactions, or [`IDLE_EPOCH`].
    slots: Vec<AtomicI64>,
    /// Number of active transactions per worker (a thread may hold a read
    /// and a write transaction at once; the slot keeps the minimum epoch).
    active: Vec<AtomicU64>,
    /// Per-worker transaction sequence numbers (for TID generation).
    seqs: Vec<AtomicU64>,
    next_slot: AtomicUsize,
}

impl EpochManager {
    /// Creates an epoch manager with room for `max_workers` worker threads.
    pub fn new(max_workers: usize) -> Self {
        Self {
            gre: AtomicI64::new(0),
            gwe: AtomicI64::new(0),
            slots: (0..max_workers).map(|_| AtomicI64::new(IDLE_EPOCH)).collect(),
            active: (0..max_workers).map(|_| AtomicU64::new(0)).collect(),
            seqs: (0..max_workers).map(|_| AtomicU64::new(0)).collect(),
            next_slot: AtomicUsize::new(0),
        }
    }

    /// Maximum number of worker slots.
    pub fn max_workers(&self) -> usize {
        self.slots.len()
    }

    /// Current global read epoch.
    #[inline]
    pub fn gre(&self) -> Timestamp {
        // ORDERING: Acquire pairs with the Release store in `publish_gre`,
        // so a reader that observes epoch E also sees every version the
        // commit tracker applied up to E.
        self.gre.load(Ordering::Acquire)
    }

    /// Current global write epoch.
    #[inline]
    pub fn gwe(&self) -> Timestamp {
        // ORDERING: Acquire pairs with the AcqRel `advance_gwe` RMW so the
        // debug invariant TRE <= GWE observes a current value.
        self.gwe.load(Ordering::Acquire)
    }

    /// Advances the global write epoch by one and returns the new value
    /// (the write timestamp assigned to the current commit group).
    #[inline]
    pub fn advance_gwe(&self) -> Timestamp {
        // ORDERING: AcqRel makes successive group timestamps form a single
        // modification order each committer both observes and extends.
        self.gwe.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Publishes a new global read epoch. Monotonicity is asserted in debug
    /// builds; callers (the commit tracker) only ever move it forward.
    #[inline]
    pub fn publish_gre(&self, epoch: Timestamp) {
        debug_assert!(epoch >= self.gre());
        // ORDERING: Release pairs with the Acquire load in `gre`; all block
        // writes applied for epochs <= `epoch` happen-before this store.
        self.gre.store(epoch, Ordering::Release);
    }

    /// Allocates a worker slot for the calling thread.
    pub fn allocate_worker(&self) -> Result<usize> {
        // ORDERING: Relaxed — the counter only hands out unique indices; no
        // other data is published through it.
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        if slot >= self.slots.len() {
            // Roll back so the counter does not run away on repeated errors.
            // ORDERING: Relaxed — same counter, still no data published.
            self.next_slot.fetch_sub(1, Ordering::Relaxed);
            return Err(Error::TooManyWorkers {
                max_workers: self.slots.len(),
            });
        }
        Ok(slot)
    }

    /// Begins a transaction on `worker`: registers the current `GRE` in the
    /// reading-epoch table and returns `(read_epoch, txn_id)`.
    pub fn begin(&self, worker: usize) -> (Timestamp, TxnId) {
        let tre = self.register(worker);
        // ORDERING: Relaxed — the per-worker sequence is only touched by the
        // owning thread; uniqueness needs atomicity, not ordering.
        let seq = self.seqs[worker].fetch_add(1, Ordering::Relaxed);
        (tre, make_txn_id(worker, seq))
    }

    /// Begins a read-only transaction (no TID needed).
    pub fn begin_read(&self, worker: usize) -> Timestamp {
        self.register(worker)
    }

    /// Begins a write transaction whose snapshot is pinned at `epoch` rather
    /// than the current `GRE`. Used by the sharded engine so every per-shard
    /// sub-transaction of one cross-shard transaction reads the same
    /// globally consistent snapshot, no matter when the shard is first
    /// touched.
    pub fn begin_at(&self, worker: usize, epoch: Timestamp) -> (Timestamp, TxnId) {
        let tre = self.begin_read_at(worker, epoch);
        // ORDERING: Relaxed — per-worker sequence, owner-thread only.
        let seq = self.seqs[worker].fetch_add(1, Ordering::Relaxed);
        (tre, make_txn_id(worker, seq))
    }

    /// Begins a read-only transaction pinned at an *older* epoch (time-travel
    /// read). The epoch is registered in the reading-epoch table so that
    /// compaction keeps every version the transaction can still see.
    pub fn begin_read_at(&self, worker: usize, epoch: Timestamp) -> Timestamp {
        // ORDERING: AcqRel on `active` orders the slot update after the
        // count bump so `finish` cannot interleave an IDLE store between
        // them; Release on the slot store pairs with the Acquire scans in
        // `min_active_epoch` / `min_active_reader_epoch`.
        if self.active[worker].fetch_add(1, Ordering::AcqRel) == 0 {
            self.slots[worker].store(epoch, Ordering::Release);
        } else {
            // ORDERING: AcqRel — RMW keeps the slot's minimum consistent
            // with concurrent `finish`/`register` on the same worker.
            self.slots[worker].fetch_min(epoch, Ordering::AcqRel);
        }
        epoch
    }

    fn register(&self, worker: usize) -> Timestamp {
        let tre = self.gre();
        // ORDERING: AcqRel on `active` + Release on the slot store — same
        // protocol as `begin_read_at`; compaction's Acquire scan of the
        // table must see the registered epoch before trusting the count.
        if self.active[worker].fetch_add(1, Ordering::AcqRel) == 0 {
            self.slots[worker].store(tre, Ordering::Release);
        } else {
            // Keep the minimum epoch of all this worker's live transactions.
            // ORDERING: AcqRel — RMW against concurrent finish/register.
            self.slots[worker].fetch_min(tre, Ordering::AcqRel);
        }
        tre
    }

    /// Marks one of the worker's transactions as finished.
    #[inline]
    pub fn finish(&self, worker: usize) {
        // ORDERING: AcqRel on `active` synchronizes with the fetch_add in
        // register/begin_read_at so only the last finisher parks the slot;
        // Release on the IDLE store pairs with compaction's Acquire scan.
        if self.active[worker].fetch_sub(1, Ordering::AcqRel) == 1 {
            self.slots[worker].store(IDLE_EPOCH, Ordering::Release);
        }
    }

    /// Fast-forwards both epochs after recovery so that new commits receive
    /// timestamps strictly greater than anything replayed from the WAL.
    pub fn reset_to(&self, epoch: Timestamp) {
        // ORDERING: AcqRel — recovery publishes the fast-forwarded epochs to
        // worker threads that start right after; pairs with the Acquire
        // loads in `gre`/`gwe`.
        self.gwe.fetch_max(epoch, Ordering::AcqRel);
        let _ = self
            .gre
            // ORDERING: AcqRel success / Acquire failure — same publication
            // edge as above, expressed as a monotonic fetch_update.
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some(cur.max(epoch))
            });
    }

    /// The smallest read epoch any active transaction may be using: the
    /// minimum over the reading-epoch table and the current `GRE` (future
    /// transactions will read at ≥ `GRE`). Compaction must not reclaim
    /// versions visible at or after this epoch.
    pub fn min_active_epoch(&self) -> Timestamp {
        let mut min = self.gre();
        for slot in &self.slots {
            // ORDERING: Acquire pairs with the Release slot stores in
            // register/begin_read_at/finish; seeing IDLE here proves the
            // worker's previous transaction fully finished.
            let v = slot.load(Ordering::Acquire);
            if v < min {
                min = v;
            }
        }
        min
    }

    /// The smallest read epoch among *currently active* transactions only
    /// ([`IDLE_EPOCH`] if none). Unlike [`EpochManager::min_active_epoch`],
    /// future transactions are not accounted for — used to decide when a
    /// block that is no longer reachable through any index (so future
    /// transactions cannot find it) may be physically freed.
    pub fn min_active_reader_epoch(&self) -> Timestamp {
        self.slots
            .iter()
            // ORDERING: Acquire — same pairing as `min_active_epoch`.
            .map(|s| s.load(Ordering::Acquire))
            .min()
            .unwrap_or(IDLE_EPOCH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_start_at_zero_and_advance() {
        let em = EpochManager::new(4);
        assert_eq!(em.gre(), 0);
        assert_eq!(em.gwe(), 0);
        assert_eq!(em.advance_gwe(), 1);
        assert_eq!(em.advance_gwe(), 2);
        em.publish_gre(2);
        assert_eq!(em.gre(), 2);
    }

    #[test]
    fn worker_allocation_is_bounded() {
        let em = EpochManager::new(2);
        assert_eq!(em.allocate_worker().unwrap(), 0);
        assert_eq!(em.allocate_worker().unwrap(), 1);
        assert!(matches!(
            em.allocate_worker(),
            Err(Error::TooManyWorkers { max_workers: 2 })
        ));
    }

    #[test]
    fn begin_registers_read_epoch_and_unique_tids() {
        let em = EpochManager::new(2);
        em.publish_gre(7);
        let (tre, tid1) = em.begin(0);
        assert_eq!(tre, 7);
        assert_eq!(em.min_active_epoch(), 7);
        let (_, tid2) = em.begin(0);
        assert_ne!(tid1, tid2);
        let (_, tid3) = em.begin(1);
        assert_ne!(tid1, tid3);
    }

    #[test]
    fn begin_read_at_pins_an_older_epoch_in_the_table() {
        let em = EpochManager::new(2);
        em.publish_gre(50);
        let tre = em.begin_read_at(0, 12);
        assert_eq!(tre, 12);
        assert_eq!(em.min_active_epoch(), 12, "pinned epoch protects old versions");
        em.finish(0);
        assert_eq!(em.min_active_epoch(), 50);
    }

    #[test]
    fn min_active_epoch_tracks_oldest_reader() {
        let em = EpochManager::new(3);
        em.publish_gre(10);
        let _ = em.begin_read(0); // reads at 10
        em.publish_gre(20);
        let _ = em.begin_read(1); // reads at 20
        assert_eq!(em.min_active_epoch(), 10);
        em.finish(0);
        assert_eq!(em.min_active_epoch(), 20);
        em.finish(1);
        assert_eq!(em.min_active_epoch(), 20, "idle workers fall back to GRE");
    }

    #[test]
    fn nested_transactions_on_one_worker_keep_the_oldest_epoch() {
        let em = EpochManager::new(1);
        em.publish_gre(5);
        let _ = em.begin_read(0); // epoch 5
        em.publish_gre(9);
        let _ = em.begin(0); // epoch 9, same worker
        assert_eq!(em.min_active_epoch(), 5, "slot must keep the minimum");
        em.finish(0);
        assert_eq!(em.min_active_epoch(), 5, "still one txn active");
        em.finish(0);
        assert_eq!(em.min_active_epoch(), 9, "idle → falls back to GRE");
    }

    #[test]
    fn reset_to_fast_forwards_both_epochs_monotonically() {
        let em = EpochManager::new(1);
        em.reset_to(42);
        assert_eq!(em.gre(), 42);
        assert_eq!(em.gwe(), 42);
        em.reset_to(10); // never goes backwards
        assert_eq!(em.gre(), 42);
        assert_eq!(em.gwe(), 42);
        assert_eq!(em.advance_gwe(), 43);
    }

    #[test]
    fn read_epoch_never_exceeds_write_epoch_guarantee() {
        // The protocol invariant "TRE < TWE of any ongoing transaction" is
        // maintained by advancing GWE before assigning TWE and publishing
        // GRE only after apply; here we check the counters themselves.
        let em = EpochManager::new(1);
        for _ in 0..100 {
            let twe = em.advance_gwe();
            em.publish_gre(twe);
            let (tre, _) = em.begin(0);
            assert!(tre <= em.gwe());
            em.finish(0);
        }
    }
}
