//! The `LiveGraph` storage engine: public API and internal storage plumbing.
//!
//! A [`LiveGraph`] owns the block store, the vertex/edge index arrays, the
//! per-vertex lock table, the epoch manager and the commit coordinator, and
//! hands out [`ReadTxn`](crate::txn::ReadTxn) / [`WriteTxn`](crate::txn::WriteTxn)
//! handles. All data lives in power-of-two blocks inside one memory region
//! (§3, Figure 2): vertex blocks, label index blocks and TELs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use livegraph_storage::{BlockPtr, BlockStore, BlockStoreOptions, BlockStoreStats, NULL_BLOCK};

use crate::commit::{CommitCoordinator, GroupClock};
use crate::compaction::{CompactionState, CompactionStats};
use crate::epoch::EpochManager;
use crate::error::{Error, Result};
use crate::index::{IndexArray, LabelIndexRef};
use crate::locks::VertexLockTable;
use crate::tel::{TelRef, EDGE_ENTRY_SIZE, TEL_HEADER_SIZE};
use crate::txn::{ReadTxn, WriteTxn};
use crate::types::{Label, Timestamp, TxnId, VertexId};
use crate::vertex::VertexBlockRef;
use crate::wal::{GroupCommitConfig, SyncMode};
use crate::bloom::bloom_bytes_for_block;

/// Configuration for a [`LiveGraph`] instance.
#[derive(Debug, Clone)]
pub struct LiveGraphOptions {
    /// Capacity of the block store region in bytes.
    pub block_store_capacity: usize,
    /// Maximum number of vertices (sizes the index arrays and lock table;
    /// the reservation is virtual memory only).
    pub max_vertices: usize,
    /// Directory for durable state (WAL, checkpoints, optional on-disk block
    /// store). `None` disables durability entirely.
    pub data_dir: Option<PathBuf>,
    /// Back the block store itself with a file inside `data_dir` (the
    /// paper's out-of-core configuration). Ignored without `data_dir`.
    pub block_store_on_disk: bool,
    /// Whether commit groups `fsync` the WAL.
    pub sync_mode: SyncMode,
    /// Number of commits between automatic compaction passes per worker
    /// (the paper's default is 65 536 transactions).
    pub compaction_interval: u64,
    /// Automatically run compaction every `compaction_interval` commits.
    pub auto_compaction: bool,
    /// Deadlock-avoidance timeout for per-vertex locks.
    pub lock_timeout: Duration,
    /// Maximum number of worker threads that may run transactions.
    pub max_workers: usize,
    /// Number of recent epochs whose superseded versions compaction must
    /// keep, enabling time-travel reads via
    /// [`LiveGraph::begin_read_at`]. `0` (the default) reproduces the
    /// paper's prototype, which garbage-collects aggressively and keeps only
    /// what active transactions still need.
    pub history_retention: i64,
    /// Group-commit tuning for the WAL: how many transaction records one
    /// write + fsync may cover, and how long a flush leader lingers for
    /// joiners. Ignored without `data_dir`.
    pub group_commit: GroupCommitConfig,
}

impl Default for LiveGraphOptions {
    fn default() -> Self {
        Self {
            block_store_capacity: 1 << 30,
            max_vertices: 1 << 24,
            data_dir: None,
            block_store_on_disk: false,
            sync_mode: SyncMode::Fsync,
            compaction_interval: 65_536,
            auto_compaction: true,
            lock_timeout: Duration::from_millis(100),
            max_workers: 256,
            history_retention: 0,
            group_commit: GroupCommitConfig::default(),
        }
    }
}

impl LiveGraphOptions {
    /// Pure in-memory configuration (no WAL, no durability).
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Durable configuration rooted at `dir` (WAL + checkpoints).
    pub fn durable(dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// Sets the block store capacity.
    pub fn with_capacity(mut self, bytes: usize) -> Self {
        self.block_store_capacity = bytes;
        self
    }

    /// Sets the maximum vertex count.
    pub fn with_max_vertices(mut self, n: usize) -> Self {
        self.max_vertices = n;
        self
    }

    /// Sets the WAL sync mode.
    pub fn with_sync_mode(mut self, mode: SyncMode) -> Self {
        self.sync_mode = mode;
        self
    }

    /// Enables or disables automatic compaction.
    pub fn with_auto_compaction(mut self, on: bool) -> Self {
        self.auto_compaction = on;
        self
    }

    /// Sets the automatic compaction interval (commits per worker).
    pub fn with_compaction_interval(mut self, every: u64) -> Self {
        self.compaction_interval = every;
        self
    }

    /// Places the block store itself on disk (out-of-core mode).
    pub fn with_block_store_on_disk(mut self, on: bool) -> Self {
        self.block_store_on_disk = on;
        self
    }

    /// Keeps superseded versions of the last `epochs` commit epochs so they
    /// remain readable through [`LiveGraph::begin_read_at`].
    pub fn with_history_retention(mut self, epochs: i64) -> Self {
        self.history_retention = epochs;
        self
    }

    /// Sets the WAL group-commit tuning (batch cap and leader linger).
    pub fn with_group_commit(mut self, config: GroupCommitConfig) -> Self {
        self.group_commit = config;
        self
    }
}

/// Counters describing how adjacency reads were served (sealed fast path
/// vs. checked scans, and the effort of Bloom-assisted point lookups).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Neighbourhood scans served by the zero-check sealed fast path.
    pub sealed_scans: u64,
    /// Neighbourhood scans that fell back to the per-entry checked path
    /// (dirty TEL, uncovered commit, or a writer transaction reading).
    pub checked_scans: u64,
    /// `get_edge` point lookups issued through the public API.
    pub edge_lookups: u64,
    /// Log entries examined by those lookups (0 for a Bloom negative).
    pub edge_lookup_entries_scanned: u64,
    /// Lookups short-circuited by a definite Bloom-filter miss.
    pub edge_lookup_bloom_negatives: u64,
}

/// One worker's scan counters, padded to a cache line so the per-scan
/// increment on the hot path never contends with other workers.
#[repr(align(64))]
#[derive(Default)]
struct WorkerScanCounters {
    sealed: AtomicU64,
    checked: AtomicU64,
}

/// Internal atomic mirror of [`ScanStats`]. Scan counts are sharded per
/// worker slot (they fire once per adjacency scan, i.e. once per vertex per
/// analytics iteration across all threads); the point-lookup counters fire
/// once per `get_edge` — which does orders of magnitude more work than one
/// increment — and stay shared.
pub(crate) struct ScanCounters {
    per_worker: Vec<WorkerScanCounters>,
    edge_lookups: AtomicU64,
    edge_lookup_entries_scanned: AtomicU64,
    edge_lookup_bloom_negatives: AtomicU64,
}

impl ScanCounters {
    fn new(max_workers: usize) -> Self {
        Self {
            per_worker: (0..max_workers).map(|_| WorkerScanCounters::default()).collect(),
            edge_lookups: AtomicU64::new(0),
            edge_lookup_entries_scanned: AtomicU64::new(0),
            edge_lookup_bloom_negatives: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record_scan(&self, worker: usize, sealed: bool) {
        let slot = &self.per_worker[worker];
        // ORDERING: Relaxed — monitoring counters; readers only want a
        // statistically correct total, no data is published through them.
        if sealed {
            slot.sealed.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.checked.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_lookup(&self, probe: crate::tel::EdgeProbe) {
        // ORDERING: Relaxed — monitoring counters, no publication.
        self.edge_lookups.fetch_add(1, Ordering::Relaxed);
        if probe.bloom_negative {
            self.edge_lookup_bloom_negatives.fetch_add(1, Ordering::Relaxed);
        }
        // ORDERING: Relaxed — monitoring counter, no publication.
        self.edge_lookup_entries_scanned
            .fetch_add(probe.entries_scanned as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ScanStats {
        let (mut sealed, mut checked) = (0u64, 0u64);
        for w in &self.per_worker {
            // ORDERING: Relaxed — stats snapshot tolerates torn totals.
            sealed += w.sealed.load(Ordering::Relaxed);
            checked += w.checked.load(Ordering::Relaxed);
        }
        ScanStats {
            sealed_scans: sealed,
            checked_scans: checked,
            // ORDERING: Relaxed — stats snapshot tolerates torn totals.
            edge_lookups: self.edge_lookups.load(Ordering::Relaxed),
            edge_lookup_entries_scanned: self.edge_lookup_entries_scanned.load(Ordering::Relaxed),
            edge_lookup_bloom_negatives: self.edge_lookup_bloom_negatives.load(Ordering::Relaxed),
        }
    }
}

/// Aggregated engine statistics (memory consumption, compaction, WAL).
///
/// **Snapshot contract:** [`LiveGraph::stats`] reads each counter with an
/// independent relaxed load while writers proceed, so a `GraphStats` is a
/// *weak* snapshot — it is **not** a consistent cut across fields. What
/// *is* guaranteed: every individual field is monotone across successive
/// snapshots, and cross-field invariants whose underlying counters are
/// published in a fixed order hold within a single snapshot — in
/// particular `wal_group_records >= wal_groups` (a flushed batch always
/// has at least one record; the WAL bumps `group_records` *before*
/// `groups` with release/acquire pairing so no reader can observe the
/// batch without its records). Pinned by the `stats_snapshot` test.
#[derive(Debug, Clone)]
pub struct GraphStats {
    /// Number of vertices ever created.
    pub vertex_count: u64,
    /// Number of committed edge insertions (upserts counted once).
    pub edge_insert_count: u64,
    /// Block store statistics, including the block size distribution used
    /// for Figure 7b.
    pub blocks: BlockStoreStats,
    /// Compaction statistics.
    pub compaction: CompactionStats,
    /// Adjacency-scan and point-lookup path statistics.
    pub scans: ScanStats,
    /// Bytes written to the WAL so far.
    pub wal_bytes: u64,
    /// Device syncs the WAL has issued (`fsync`s, or simulated flushes).
    /// With group commit this stays below the commit count under
    /// concurrency: one sync covers a whole batch of transactions.
    pub wal_fsyncs: u64,
    /// Commit batches the WAL has flushed (each = one write + one sync).
    pub wal_groups: u64,
    /// Transaction records across all flushed WAL batches;
    /// `wal_group_records > wal_groups` means multi-transaction batches
    /// actually formed.
    pub wal_group_records: u64,
    /// True once a fault-injected [`SyncMode::CrashAt`] tear has dropped
    /// WAL bytes (always false outside the crash-consistency harness).
    pub wal_torn: bool,
    /// Current global read epoch.
    pub read_epoch: Timestamp,
    /// Current global write epoch.
    pub write_epoch: Timestamp,
}

static GRAPH_IDS: AtomicUsize = AtomicUsize::new(0);

/// Internal shared state. Public API types borrow this through [`LiveGraph`].
pub(crate) struct GraphInner {
    pub(crate) id: usize,
    pub(crate) store: BlockStore,
    pub(crate) vertex_index: IndexArray,
    pub(crate) edge_index: IndexArray,
    pub(crate) locks: VertexLockTable,
    pub(crate) epochs: Arc<EpochManager>,
    pub(crate) commit: CommitCoordinator,
    pub(crate) compaction: CompactionState,
    pub(crate) next_vertex: AtomicU64,
    pub(crate) edge_insert_count: AtomicU64,
    pub(crate) scan_counters: ScanCounters,
    pub(crate) telemetry: Arc<crate::telemetry::Telemetry>,
    /// Ids of deleted vertices reclaimed by compaction, available for reuse
    /// by [`crate::WriteTxn::create_vertex`].
    pub(crate) free_vertex_ids: parking_lot::Mutex<Vec<VertexId>>,
    /// Set while recovery replays the checkpoint/WAL, so committed replays
    /// are not re-appended to the WAL.
    pub(crate) recovery_mode: AtomicBool,
    /// Highest epoch pruned out of the WAL (the snapshot epoch of the last
    /// checkpoint, restored from the checkpoint file on recovery). The WAL
    /// on disk holds exactly the records with epochs above this floor, so a
    /// replication tail can resume from epoch `e` iff `e >= prune_floor` —
    /// otherwise the replica must re-bootstrap from the checkpoint.
    pub(crate) prune_floor: std::sync::atomic::AtomicI64,
    pub(crate) options: LiveGraphOptions,
}

thread_local! {
    /// Worker slot of the current thread, per graph instance id.
    static WORKER_SLOTS: std::cell::RefCell<Vec<(usize, usize)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl GraphInner {
    /// Returns (allocating on first use) the calling thread's worker slot.
    pub(crate) fn worker_slot(&self) -> Result<usize> {
        WORKER_SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            if let Some(&(_, slot)) = slots.iter().find(|(id, _)| *id == self.id) {
                return Ok(slot);
            }
            let slot = self.epochs.allocate_worker()?;
            slots.push((self.id, slot));
            Ok(slot)
        })
    }

    /// Smallest size-class order whose TEL can hold `log_bytes` of edge
    /// entries plus `prop_bytes` of properties (accounting for the header
    /// and the Bloom filter share of the block).
    pub(crate) fn tel_order_for(log_bytes: u64, prop_bytes: u64) -> u8 {
        let needed = log_bytes as usize + prop_bytes as usize;
        let mut order = 1u8; // 128 bytes: header + 2 entries minimum
        loop {
            let size = 64usize << order;
            let usable = size - TEL_HEADER_SIZE - bloom_bytes_for_block(size);
            if usable >= needed {
                return order;
            }
            order += 1;
        }
    }

    /// Allocates and initialises an empty TEL of at least the given usable
    /// capacity.
    pub(crate) fn alloc_tel(
        &self,
        src: VertexId,
        label: Label,
        log_bytes: u64,
        prop_bytes: u64,
        prev: BlockPtr,
    ) -> Result<BlockPtr> {
        let order = Self::tel_order_for(log_bytes, prop_bytes);
        let ptr = self.store.allocate_zeroed(order)?;
        let tel = self.tel_ref(ptr, order);
        tel.init(src, label, order, prev);
        Ok(ptr)
    }

    /// Wraps a block pointer whose order is already known.
    pub(crate) fn tel_ref(&self, ptr: BlockPtr, order: u8) -> TelRef<'_> {
        // SAFETY: the block was allocated with this order and never moves.
        unsafe { TelRef::from_raw(self.store.block_ptr(ptr), 64usize << order) }
    }

    /// Wraps a block pointer, reading the order from the TEL header.
    pub(crate) fn tel_ref_auto(&self, ptr: BlockPtr) -> TelRef<'_> {
        debug_assert_ne!(ptr, NULL_BLOCK);
        // SAFETY: order byte lives at a fixed header offset (48) in every TEL.
        let order = unsafe { *self.store.block_ptr(ptr).add(48) };
        self.tel_ref(ptr, order)
    }

    /// Wraps a vertex block pointer, reading the order from its header.
    pub(crate) fn vertex_ref(&self, ptr: BlockPtr) -> VertexBlockRef<'_> {
        debug_assert_ne!(ptr, NULL_BLOCK);
        // SAFETY: order byte lives at header offset 20 in every vertex block.
        let order = unsafe { *self.store.block_ptr(ptr).add(20) };
        unsafe { VertexBlockRef::from_raw(self.store.block_ptr(ptr), 64usize << order) }
    }

    /// Wraps a label index block pointer. The order is stored in its header.
    pub(crate) fn label_index_ref(&self, ptr: BlockPtr) -> LabelIndexRef<'_> {
        debug_assert_ne!(ptr, NULL_BLOCK);
        // SAFETY: order byte lives at header offset 8 in label index blocks.
        let order = unsafe { *self.store.block_ptr(ptr).add(8) };
        unsafe { LabelIndexRef::from_raw(self.store.block_ptr(ptr), 64usize << order) }
    }

    /// Looks up the committed TEL for `(vertex, label)`.
    pub(crate) fn find_tel(&self, vertex: VertexId, label: Label) -> Option<BlockPtr> {
        let li_ptr = self.edge_index.get(vertex);
        if li_ptr == NULL_BLOCK {
            return None;
        }
        let li = self.label_index_ref(li_ptr);
        li.find(label).filter(|&p| p != NULL_BLOCK)
    }

    /// Ensures a label-index entry and TEL exist for `(vertex, label)`,
    /// creating (and, if necessary, upgrading the label index block) under
    /// the caller-held vertex lock. Returns the TEL pointer.
    pub(crate) fn ensure_tel(&self, vertex: VertexId, label: Label) -> Result<BlockPtr> {
        // Label index block.
        let mut li_ptr = self.edge_index.get(vertex);
        if li_ptr == NULL_BLOCK {
            let order = 0u8; // 64-byte block: 3 label slots
            li_ptr = self.store.allocate_zeroed(order)?;
            self.label_index_ref(li_ptr).init(order);
            self.edge_index.set(vertex, li_ptr);
        }
        let li = self.label_index_ref(li_ptr);
        if let Some(tel) = li.find(label) {
            if tel != NULL_BLOCK {
                return Ok(tel);
            }
        }
        // Need a fresh TEL for this label.
        let tel_ptr = self.alloc_tel(vertex, label, EDGE_ENTRY_SIZE as u64, 0, NULL_BLOCK)?;
        if !li.push(label, tel_ptr) {
            // Label index block full: upgrade it (double the size).
            let new_order = li.order() + 1;
            let new_ptr = self.store.allocate_zeroed(new_order)?;
            let new_li = self.label_index_ref_with_order(new_ptr, new_order);
            new_li.init(new_order);
            li.copy_into(&new_li);
            let pushed = new_li.push(label, tel_ptr);
            debug_assert!(pushed);
            self.edge_index.set(vertex, new_ptr);
            // The old label index block may still be referenced by readers
            // that loaded the edge-index slot before the swap; retire it.
            self.compaction
                .retire(self.epochs.gre(), li_ptr, li.order());
        }
        Ok(tel_ptr)
    }

    fn label_index_ref_with_order(&self, ptr: BlockPtr, order: u8) -> LabelIndexRef<'_> {
        // SAFETY: freshly allocated with this order.
        unsafe { LabelIndexRef::from_raw(self.store.block_ptr(ptr), 64usize << order) }
    }

    /// Reads the committed vertex payload visible at `(tre, tid)`. Returns
    /// `None` if the visible version is a deletion tombstone.
    pub(crate) fn read_vertex_version(
        &self,
        vertex: VertexId,
        tre: Timestamp,
        tid: TxnId,
    ) -> Option<&[u8]> {
        // ORDERING: Acquire pairs with the Release bump of `next_vertex` in
        // vertex allocation, so an id observed here has its index slot and
        // lock-table entry initialized.
        if vertex >= self.next_vertex.load(Ordering::Acquire) {
            return None;
        }
        let mut ptr = self.vertex_index.get(vertex);
        // Walk the copy-on-write chain until a visible version is found.
        while ptr != NULL_BLOCK {
            let block = self.vertex_ref(ptr);
            if block.visible(tre, tid) {
                if block.is_deleted() {
                    return None;
                }
                return Some(block.data());
            }
            ptr = block.prev_ptr();
        }
        None
    }

    /// True if the version of `vertex` visible at `tre` is a deletion
    /// tombstone (as opposed to the id simply never having been committed).
    pub(crate) fn vertex_deleted_at(&self, vertex: VertexId, tre: Timestamp) -> bool {
        // ORDERING: Acquire — same allocation edge as `read_vertex_version`.
        if vertex >= self.next_vertex.load(Ordering::Acquire) {
            return false;
        }
        let mut ptr = self.vertex_index.get(vertex);
        while ptr != NULL_BLOCK {
            let block = self.vertex_ref(ptr);
            if block.visible(tre, 0) {
                return block.is_deleted();
            }
            ptr = block.prev_ptr();
        }
        false
    }

    /// The labels for which `vertex` has a (possibly empty) TEL.
    /// ([`crate::txn::LabelIter`] is the single source of truth for the
    /// label-index walk; this is its collecting convenience.)
    pub(crate) fn labels_of(&self, vertex: VertexId) -> Vec<Label> {
        crate::txn::LabelIter::new(self, vertex).collect()
    }

    /// Pops a recycled vertex id, if one is available.
    pub(crate) fn pop_free_vertex_id(&self) -> Option<VertexId> {
        self.free_vertex_ids.lock().pop()
    }

    /// Returns a vertex id to the free list for reuse.
    pub(crate) fn push_free_vertex_id(&self, vertex: VertexId) {
        self.free_vertex_ids.lock().push(vertex);
    }

    /// True if `vertex` has been allocated (it may still lack a committed
    /// vertex block if its creating transaction is in flight or aborted).
    pub(crate) fn vertex_exists(&self, vertex: VertexId) -> bool {
        // ORDERING: Acquire — same allocation edge as `read_vertex_version`.
        vertex < self.next_vertex.load(Ordering::Acquire)
    }

    /// Number of label-slot entries a fresh label index block of order 0
    /// offers (used by tests and sizing heuristics).
    #[cfg(test)]
    pub(crate) fn label_slots_for_order(order: u8) -> usize {
        use crate::index::{LABEL_INDEX_HEADER, LABEL_SLOT_SIZE};
        ((64usize << order) - LABEL_INDEX_HEADER) / LABEL_SLOT_SIZE
    }
}

/// A transactional graph storage engine with purely sequential adjacency
/// list scans (the system described in the paper).
///
/// `LiveGraph` is cheap to clone-by-reference (`&LiveGraph`) across threads:
/// all shared state is internally synchronised. Transactions borrow the
/// graph, so the graph must outlive them.
///
/// # Example
/// ```
/// use livegraph_core::{LiveGraph, LiveGraphOptions};
///
/// let graph = LiveGraph::open(LiveGraphOptions::in_memory()).unwrap();
/// let mut txn = graph.begin_write().unwrap();
/// let alice = txn.create_vertex(b"alice").unwrap();
/// let bob = txn.create_vertex(b"bob").unwrap();
/// txn.put_edge(alice, 0, bob, b"friends").unwrap();
/// txn.commit().unwrap();
///
/// let read = graph.begin_read().unwrap();
/// let neighbours: Vec<_> = read.edges(alice, 0).map(|e| e.dst).collect();
/// assert_eq!(neighbours, vec![bob]);
/// ```
pub struct LiveGraph {
    inner: Arc<GraphInner>,
}

/// Shared infrastructure injected into a shard of a
/// [`crate::sharded::ShardedGraph`]: one epoch manager and one commit clock
/// serve every shard, so all shards agree on a single `GRE`/`GWE` timeline.
pub(crate) struct EngineHooks {
    pub(crate) epochs: Arc<EpochManager>,
    pub(crate) clock: Arc<GroupClock>,
    /// One registry for every shard, so exported totals are pre-flattened
    /// across shards (mirroring the single GRE/GWE timeline).
    pub(crate) telemetry: Arc<crate::telemetry::Telemetry>,
    /// Skip per-graph recovery on open; the sharded engine replays all
    /// shard WALs itself, merged into one consistent epoch order.
    pub(crate) defer_recovery: bool,
}

impl LiveGraph {
    /// Opens a graph with the given options. If a data directory with an
    /// existing checkpoint and/or WAL is supplied, the previous state is
    /// recovered before the call returns.
    pub fn open(options: LiveGraphOptions) -> Result<Self> {
        Self::open_with_hooks(options, None)
    }

    pub(crate) fn open_with_hooks(
        options: LiveGraphOptions,
        hooks: Option<EngineHooks>,
    ) -> Result<Self> {
        let store = match (&options.data_dir, options.block_store_on_disk) {
            (Some(dir), true) => {
                std::fs::create_dir_all(dir)?;
                BlockStore::file_backed(
                    &dir.join("blocks.dat"),
                    BlockStoreOptions {
                        capacity: options.block_store_capacity,
                        ..Default::default()
                    },
                )?
            }
            _ => {
                if let Some(dir) = &options.data_dir {
                    std::fs::create_dir_all(dir)?;
                }
                BlockStore::with_options(BlockStoreOptions {
                    capacity: options.block_store_capacity,
                    ..Default::default()
                })?
            }
        };
        let wal_path = options.data_dir.as_ref().map(|d| d.join("wal.log"));
        let (epochs, mut commit, telemetry, defer_recovery) = match hooks {
            Some(h) => {
                assert_eq!(
                    h.epochs.max_workers(),
                    options.max_workers,
                    "shared epoch manager must be sized for the shard's max_workers"
                );
                let commit = CommitCoordinator::with_clock(
                    wal_path.as_deref(),
                    options.sync_mode,
                    options.group_commit,
                    h.clock,
                )?;
                (h.epochs, commit, h.telemetry, h.defer_recovery)
            }
            None => {
                let commit = CommitCoordinator::new(
                    wal_path.as_deref(),
                    options.sync_mode,
                    options.group_commit,
                )?;
                let telemetry = crate::telemetry::Telemetry::new(options.max_workers);
                telemetry.set_enabled(true);
                (
                    Arc::new(EpochManager::new(options.max_workers)),
                    commit,
                    telemetry,
                    false,
                )
            }
        };
        commit.set_telemetry(Arc::clone(&telemetry));
        let inner = GraphInner {
            // ORDERING: Relaxed — process-unique id; atomicity suffices.
            id: GRAPH_IDS.fetch_add(1, Ordering::Relaxed),
            vertex_index: IndexArray::new(options.max_vertices)?,
            edge_index: IndexArray::new(options.max_vertices)?,
            locks: VertexLockTable::new(options.max_vertices)?,
            epochs,
            commit,
            compaction: CompactionState::new(options.max_workers),
            next_vertex: AtomicU64::new(0),
            edge_insert_count: AtomicU64::new(0),
            scan_counters: ScanCounters::new(options.max_workers),
            telemetry,
            free_vertex_ids: parking_lot::Mutex::new(Vec::new()),
            recovery_mode: AtomicBool::new(false),
            prune_floor: std::sync::atomic::AtomicI64::new(0),
            store,
            options,
        };
        debug_assert_eq!(inner.epochs.max_workers(), inner.options.max_workers);
        debug_assert_eq!(inner.vertex_index.capacity(), inner.options.max_vertices);
        debug_assert_eq!(inner.locks.capacity(), inner.options.max_vertices);
        let graph = Self {
            inner: Arc::new(inner),
        };
        if !defer_recovery {
            graph.recover_existing_state()?;
        }
        Ok(graph)
    }

    /// Internal shared state, for the in-crate sharded engine.
    pub(crate) fn inner(&self) -> &GraphInner {
        self.inner.as_ref()
    }

    /// Convenience constructor for a default in-memory graph.
    pub fn in_memory() -> Result<Self> {
        Self::open(LiveGraphOptions::in_memory())
    }

    /// Starts a read-only transaction on a consistent snapshot.
    pub fn begin_read(&self) -> Result<ReadTxn<'_>> {
        ReadTxn::begin(self.inner.as_ref())
    }

    /// Starts a time-travel read-only transaction pinned at `epoch`.
    ///
    /// The epoch must be between 0 and the current global read epoch (see
    /// [`GraphStats::read_epoch`]). Whether versions older than the pinned
    /// epoch are still materialised depends on
    /// [`LiveGraphOptions::history_retention`]: with the default aggressive
    /// garbage collection only epochs newer than the oldest running
    /// transaction are guaranteed to be complete.
    pub fn begin_read_at(&self, epoch: Timestamp) -> Result<ReadTxn<'_>> {
        ReadTxn::begin_at(self.inner.as_ref(), epoch)
    }

    /// Starts a read-write transaction.
    pub fn begin_write(&self) -> Result<WriteTxn<'_>> {
        WriteTxn::begin(self.inner.as_ref())
    }

    /// Number of vertices ever created (including uncommitted/aborted ids).
    pub fn vertex_count(&self) -> u64 {
        // ORDERING: Acquire — pairs with the Release bump in allocation.
        self.inner.next_vertex.load(Ordering::Acquire)
    }

    /// Runs a full compaction pass over every dirty vertex (all workers).
    pub fn compact(&self) {
        crate::compaction::compact_all(&self.inner);
    }

    /// Writes a checkpoint of the latest committed snapshot into the data
    /// directory and prunes the WAL. Requires a durable configuration.
    pub fn checkpoint(&self) -> Result<()> {
        crate::checkpoint::write_checkpoint(&self.inner).map(|_| ())
    }

    /// Highest epoch pruned out of the WAL by checkpointing (0 if the WAL
    /// has never been pruned). The on-disk log holds exactly the records
    /// with epochs above this floor; see
    /// [`LiveGraph::wal_tail`](crate::replication::WalTail) for how
    /// replication uses it to decide between resume and re-bootstrap.
    pub fn wal_prune_floor(&self) -> Timestamp {
        // ORDERING: Acquire pairs with the Release store after checkpoint
        // pruning, so a floor observed here implies the checkpoint files
        // that replace the pruned records are fully on disk.
        self.inner.prune_floor.load(Ordering::Acquire)
    }

    /// The oldest snapshot epoch any *currently active* transaction has
    /// pinned in the reading-epoch table, or `None` when no transaction is
    /// active. Lets admin tooling (and the service layer's
    /// disconnect-cleanup regression tests) verify that finished or
    /// abandoned sessions left no epoch pins behind — a leaked pin would
    /// hold back compaction indefinitely.
    pub fn oldest_active_read_epoch(&self) -> Option<Timestamp> {
        let min = self.inner.epochs.min_active_reader_epoch();
        (min != crate::epoch::IDLE_EPOCH).then_some(min)
    }

    /// Engine statistics.
    pub fn stats(&self) -> GraphStats {
        let wal = self.inner.commit.wal_stats();
        GraphStats {
            vertex_count: self.vertex_count(),
            // ORDERING: Relaxed — monitoring counter, no publication.
            edge_insert_count: self.inner.edge_insert_count.load(Ordering::Relaxed),
            blocks: self.inner.store.stats(),
            compaction: self.inner.compaction.stats(),
            scans: self.inner.scan_counters.snapshot(),
            wal_bytes: wal.bytes,
            wal_fsyncs: wal.fsyncs,
            wal_groups: wal.groups,
            wal_group_records: wal.group_records,
            wal_torn: wal.torn,
            read_epoch: self.inner.epochs.gre(),
            write_epoch: self.inner.epochs.gwe(),
        }
    }

    /// The options this graph was opened with.
    pub fn options(&self) -> &LiveGraphOptions {
        &self.inner.options
    }

    /// The live telemetry registry: hot-path counters, gauges and span
    /// histograms. Shared with the service layer (reactor/replication
    /// spans) and admin endpoints.
    pub fn telemetry(&self) -> &Arc<crate::telemetry::Telemetry> {
        &self.inner.telemetry
    }

    /// Full metrics dump: the telemetry registry plus engine-derived
    /// counters and gauges (epochs, WAL totals, scan path totals), under
    /// the weak-snapshot contract of
    /// [`MetricsSnapshot`](crate::telemetry::MetricsSnapshot).
    pub fn metrics(&self) -> crate::telemetry::MetricsSnapshot {
        let mut snap = self.inner.telemetry.snapshot();
        let stats = self.stats();
        push_engine_metrics(&mut snap, &stats);
        snap
    }

    /// Drops OS page-cache residency for a file-backed block store (used by
    /// the out-of-core benchmarks to start cold). No-op for in-memory
    /// graphs.
    pub fn drop_page_cache(&self) -> Result<()> {
        self.inner.store.drop_page_cache().map_err(Error::from)
    }

    fn recover_existing_state(&self) -> Result<()> {
        crate::checkpoint::recover(&self.inner)
    }
}

/// Extends a registry snapshot with the engine-derived counters and gauges
/// every dump exposes (epochs, WAL totals, scan path totals). Shared by
/// [`LiveGraph::metrics`] and the sharded engine's flattened dump.
pub(crate) fn push_engine_metrics(
    snap: &mut crate::telemetry::MetricsSnapshot,
    stats: &GraphStats,
) {
    snap.push_counter("livegraph_vertices_total", stats.vertex_count);
    snap.push_counter("livegraph_edge_inserts_total", stats.edge_insert_count);
    snap.push_counter("livegraph_wal_bytes_total", stats.wal_bytes);
    snap.push_counter("livegraph_wal_fsyncs_total", stats.wal_fsyncs);
    snap.push_counter("livegraph_wal_groups_total", stats.wal_groups);
    snap.push_counter("livegraph_wal_group_records_total", stats.wal_group_records);
    snap.push_counter("livegraph_sealed_scans_total", stats.scans.sealed_scans);
    snap.push_counter("livegraph_checked_scans_total", stats.scans.checked_scans);
    snap.push_counter("livegraph_edge_lookups_total", stats.scans.edge_lookups);
    snap.push_counter(
        "livegraph_compaction_passes_total",
        stats.compaction.passes,
    );
    snap.push_gauge("livegraph_read_epoch", stats.read_epoch);
    snap.push_gauge("livegraph_write_epoch", stats.write_epoch);
    snap.push_gauge("livegraph_epoch_lag", stats.write_epoch - stats.read_epoch);
    snap.push_gauge("livegraph_wal_torn", i64::from(stats.wal_torn));
}

impl std::fmt::Debug for LiveGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveGraph")
            .field("vertices", &self.vertex_count())
            .field("gre", &self.inner.epochs.gre())
            .field("gwe", &self.inner.epochs.gwe())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tel_order_sizing_accounts_for_header_and_bloom() {
        // 2 entries (64 bytes) fit in a 128-byte block.
        assert_eq!(GraphInner::tel_order_for(64, 0), 1);
        // 3 entries need 256 bytes (192 usable).
        assert_eq!(GraphInner::tel_order_for(96, 0), 2);
        // Large logs account for the 1/16 bloom share.
        let order = GraphInner::tel_order_for(10_000, 0);
        let size = 64usize << order;
        assert!(size - TEL_HEADER_SIZE - bloom_bytes_for_block(size) >= 10_000);
    }

    #[test]
    fn label_slot_capacity_matches_block_math() {
        assert_eq!(GraphInner::label_slots_for_order(0), 3);
        assert_eq!(GraphInner::label_slots_for_order(1), 7);
    }

    #[test]
    fn options_builders_compose() {
        let opts = LiveGraphOptions::in_memory()
            .with_capacity(1 << 20)
            .with_max_vertices(1024)
            .with_auto_compaction(false)
            .with_compaction_interval(7)
            .with_sync_mode(SyncMode::NoSync);
        assert_eq!(opts.block_store_capacity, 1 << 20);
        assert_eq!(opts.max_vertices, 1024);
        assert!(!opts.auto_compaction);
        assert_eq!(opts.compaction_interval, 7);
        assert_eq!(opts.sync_mode, SyncMode::NoSync);
    }

    #[test]
    fn open_in_memory_graph_and_query_stats() {
        let graph = LiveGraph::in_memory().unwrap();
        assert_eq!(graph.vertex_count(), 0);
        let stats = graph.stats();
        assert_eq!(stats.vertex_count, 0);
        assert_eq!(stats.wal_bytes, 0);
        assert_eq!(stats.read_epoch, 0);
    }
}
