//! Model-checked telemetry registry: concurrent counter/histogram updates
//! and a racing snapshot reader, explored over every interleaving the
//! bounded scheduler allows. The registry promises *weak* snapshots — no
//! consistent cut — but each individual metric must stay monotone and no
//! update may ever be lost.
//!
//! Run with `RUSTFLAGS="--cfg livegraph_loom" cargo test -p livegraph-core
//! --test model_telemetry`.
#![cfg(livegraph_loom)]

use livegraph_core::sync::{thread, Arc};
use livegraph_core::telemetry::{counter, histogram, Telemetry};

// Two writers race observations into one histogram; every interleaving
// of the four relaxed RMWs per `observe` must leave exact totals — a
// lost bucket tick, count, sum contribution or max would surface here.
// (A snapshot reader racing the writers is deliberately *not* modelled:
// `snapshot` performs ~160 atomic loads, which blows the bounded
// scheduler's schedule budget; the weak-snapshot contract under load is
// pinned by the non-loom `stats_snapshot` test instead.)
#[test]
fn histogram_never_loses_a_concurrent_observation() {
    loom::model(|| {
        let h = Arc::new(histogram("livegraph_model_seconds"));
        let writers: Vec<_> = [3u64, 200u64]
            .into_iter()
            .map(|v| {
                let h = Arc::clone(&h);
                thread::spawn(move || h.observe(v))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let end = h.snapshot();
        assert_eq!(end.count, 2);
        assert_eq!(end.sum, 203);
        assert_eq!(end.max, 200);
        assert_eq!(end.buckets.iter().sum::<u64>(), 2);
    });
}

// Counter increments from two threads are never lost, and a racing read
// only ever sees 0, 1 or 2 (monotone, no torn values).
#[test]
fn counter_increments_are_never_lost() {
    loom::model(|| {
        let c = Arc::new(counter("livegraph_model_total"));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || c.inc())
            })
            .collect();
        let seen = c.get();
        assert!(seen <= 2, "counter from nowhere: {seen}");
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(c.get(), 2);
    });
}

// The per-worker commit tally cells flatten into one exact total: two
// workers committing concurrently (plus one overflow worker falling back
// to the shared counter) must all be visible in the snapshot after join.
#[test]
fn per_worker_commit_tallies_flatten_exactly() {
    loom::model(|| {
        let tel = Telemetry::new(2);
        tel.set_enabled(true);
        let joins: Vec<_> = [0usize, 1, 7]
            .into_iter()
            .map(|worker| {
                let tel = Arc::clone(&tel);
                thread::spawn(move || tel.inc_commit(worker))
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counter("livegraph_commits_total"), Some(3));
    });
}
