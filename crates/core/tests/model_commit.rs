//! Model-checked group commit: the `GroupWal` flush-leader handoff and the
//! `GroupClock` epoch/GRE protocol, explored over every interleaving the
//! bounded scheduler allows. A lost durability ticket or a lost GRE wakeup
//! shows up as a model deadlock; an order violation as an assertion.
//!
//! Run with `RUSTFLAGS="--cfg livegraph_loom" cargo test -p livegraph-core
//! --test model_commit`.
#![cfg(livegraph_loom)]

use livegraph_core::sync::{thread, Arc, Mutex};
use livegraph_core::wal::{GroupCommitConfig, GroupWal, SyncMode, WalRecord, WalWriter};
use livegraph_core::{EpochManager, GroupClock};

// Two committers race enqueue + wait_durable on one WAL. Whoever finds no
// flush in progress becomes the leader and must cover (or hand off to a
// leader that covers) the other's ticket; losing a ticket — leader retires
// without a follower ever being woken — is a deadlock the checker reports.
#[test]
fn group_wal_never_loses_a_durability_ticket() {
    let path = std::env::temp_dir().join(format!(
        "livegraph-model-wal-{}.wal",
        std::process::id()
    ));
    let path_outer = path.clone();
    loom::model(move || {
        let _ = std::fs::remove_file(&path);
        let writer = WalWriter::open(&path, SyncMode::NoSync).unwrap();
        let wal = Arc::new(GroupWal::new(writer, GroupCommitConfig::default()));
        let joins: Vec<_> = (0..2)
            .map(|t| {
                let wal = Arc::clone(&wal);
                thread::spawn(move || {
                    let ticket = wal.enqueue(vec![WalRecord {
                        epoch: t + 1,
                        ops: Vec::new(),
                    }]);
                    wal.wait_durable(ticket).unwrap();
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(wal.stats().group_records, 2, "both records flushed");
    });
    let _ = std::fs::remove_file(&path_outer);
}

// Epoch assignment and WAL enqueue happen atomically under the tracker
// lock (`begin_group_with`), so the per-log record order can never invert
// the epoch order — the invariant the crash-recovery oracle relies on
// (a torn tail is always an epoch-prefix).
#[test]
fn wal_enqueue_order_matches_epoch_order() {
    loom::model(|| {
        let epochs = Arc::new(EpochManager::new(4));
        let clock = GroupClock::new();
        let log: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        let joins: Vec<_> = (0..2)
            .map(|_| {
                let epochs = Arc::clone(&epochs);
                let clock = Arc::clone(&clock);
                let log = Arc::clone(&log);
                thread::spawn(move || {
                    let (epoch, ()) = clock.begin_group_with(&epochs, 1, |e| {
                        log.lock().push(e);
                    });
                    clock.finish_apply(&epochs, epoch);
                    epoch
                })
            })
            .collect();
        let mut epochs_seen: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        epochs_seen.sort_unstable();
        assert_eq!(epochs_seen, vec![1, 2], "each group got a distinct epoch");
        let logged = log.lock().clone();
        assert_eq!(logged, vec![1, 2], "log order must equal epoch order");
        assert_eq!(epochs.gre(), 2, "both applies done: GRE fully advanced");
    });
}

// A committer blocked in `wait_for_gre` must always see the advance
// performed by a concurrent `finish_apply` — the condvar wait re-checks
// GRE under the tracker lock, so there is no lost-wakeup window. If there
// were, this model would deadlock.
#[test]
fn wait_for_gre_never_misses_the_advance() {
    loom::model(|| {
        let epochs = Arc::new(EpochManager::new(4));
        let clock = GroupClock::new();
        let (epoch, ()) = clock.begin_group_with(&epochs, 1, |_| ());
        let waiter = {
            let epochs = Arc::clone(&epochs);
            let clock = Arc::clone(&clock);
            thread::spawn(move || clock.wait_for_gre(&epochs, epoch))
        };
        clock.finish_apply(&epochs, epoch);
        waiter.join().unwrap();
        assert_eq!(epochs.gre(), epoch);
    });
}

// Out-of-order applies: the younger epoch finishing first must not drag
// GRE past the older epoch still applying (visibility would outrun
// durability ordering). GRE jumps to 2 only once both are done.
#[test]
fn gre_advances_only_across_fully_applied_prefixes() {
    loom::model(|| {
        let epochs = Arc::new(EpochManager::new(4));
        let clock = GroupClock::new();
        let (e1, ()) = clock.begin_group_with(&epochs, 1, |_| ());
        let (e2, ()) = clock.begin_group_with(&epochs, 1, |_| ());
        assert_eq!((e1, e2), (1, 2));
        let younger = {
            let epochs = Arc::clone(&epochs);
            let clock = Arc::clone(&clock);
            thread::spawn(move || clock.finish_apply(&epochs, e2))
        };
        let gre_mid = epochs.gre();
        assert_eq!(
            gre_mid, 0,
            "epoch 1 still applying: GRE must not advance past it"
        );
        clock.finish_apply(&epochs, e1);
        younger.join().unwrap();
        assert_eq!(epochs.gre(), 2, "prefix complete: GRE reaches epoch 2");
    });
}
