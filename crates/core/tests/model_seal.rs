//! Model-checked seal protocol: every interleaving of an in-flight apply
//! against a seal-checking reader (bounded preemptions, all weak-memory
//! outcomes the shims allow) either yields a fully consistent seal or
//! triggers the `CT > TRE` fallback — a torn log size is never trusted.
//!
//! Run with `RUSTFLAGS="--cfg livegraph_loom" cargo test -p livegraph-core
//! --test model_seal`. The `seeded_bug_*` twins invert one store order (or
//! weaken one ordering) and prove the checker rejects it.
#![cfg(livegraph_loom)]

use livegraph_core::seal::{self, SealCell, SealWords};
use livegraph_core::sync::atomic::{AtomicI64, Ordering};
use livegraph_core::sync::{thread, Arc};

/// Publishes the "old" state every test starts from: a commit at epoch 1
/// whose log spans 100 bytes, clean invalidation summary.
fn seeded_cell() -> Arc<SealCell> {
    let cell = Arc::new(SealCell::new());
    seal::publish_commit(&*cell, 1, 100);
    cell
}

// A reader whose snapshot does NOT cover the in-flight commit must either
// miss it entirely (the old, consistent state) or detect it via the final
// CT load and bail out. It must never seal a torn mix of old and new words.
#[test]
fn uncovered_reader_never_trusts_a_torn_seal() {
    loom::model(|| {
        let cell = seeded_cell();
        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || {
            seal::publish_commit(&*c2, 5, 200);
            seal::record_invalidations(&*c2, 3, 5);
        });
        match seal::covered_log(&*cell, 1) {
            None => {}             // observed the in-flight commit: fallback
            Some((100, 0)) => {}   // the old state, fully consistent
            Some(torn) => panic!("torn seal read accepted: {torn:?}"),
        }
        writer.join().unwrap();
    });
}

// The cross-structure half of the guarantee: a reader only acquires a
// snapshot covering epoch E after GRE has advanced past E, and GRE only
// advances after the whole apply (summary included). Through that
// release/acquire edge a covered reader must observe the complete apply —
// a stale summary is impossible, not merely detected.
#[test]
fn gre_edge_gives_covered_readers_the_complete_apply() {
    loom::model(|| {
        let cell = seeded_cell();
        let gre = Arc::new(AtomicI64::new(1));
        let c2 = Arc::clone(&cell);
        let g2 = Arc::clone(&gre);
        let writer = thread::spawn(move || {
            seal::publish_commit(&*c2, 5, 200);
            seal::record_invalidations(&*c2, 3, 5);
            // The commit tracker publishes GRE only after the full apply.
            g2.store(5, Ordering::Release);
        });
        let tre = gre.load(Ordering::Acquire);
        let got = seal::covered_log(&*cell, tre);
        if tre == 5 {
            assert_eq!(
                got,
                Some((200, 3)),
                "snapshot covers epoch 5: the seal must be the full apply"
            );
        } else {
            assert!(
                got.is_none() || got == Some((100, 0)),
                "uncovered reader saw a torn seal: {got:?}"
            );
        }
        writer.join().unwrap();
    });
}

// Seeded bug: storing LS before CT (the reverse of `seal::publish_commit`)
// lets a reader pair the new log size with the old commit timestamp and
// seal a log it has not fully seen. The checker must find the interleaving.
#[test]
#[should_panic(expected = "loom model failure")]
fn seeded_bug_ls_before_ct_is_caught() {
    loom::model(|| {
        let cell = seeded_cell();
        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || {
            // BUG (deliberate): the reversed store order.
            c2.log_size_store(200, Ordering::Release);
            c2.commit_ts_store(5, Ordering::Release);
        });
        let got = seal::covered_log(&*cell, 1);
        assert!(
            got.is_none() || got == Some((100, 0)),
            "torn seal read accepted: {got:?}"
        );
        writer.join().unwrap();
    });
}

// Seeded bug: the correct store order but Relaxed stores — without the
// release/acquire chain the final CT load is no longer forced to observe
// the in-flight epoch after a torn LS read.
#[test]
#[should_panic(expected = "loom model failure")]
fn seeded_bug_relaxed_publication_is_caught() {
    loom::model(|| {
        let cell = seeded_cell();
        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || {
            // BUG (deliberate): right order, missing Release.
            c2.commit_ts_store(5, Ordering::Relaxed);
            c2.log_size_store(200, Ordering::Relaxed);
        });
        let got = seal::covered_log(&*cell, 1);
        assert!(
            got.is_none() || got == Some((100, 0)),
            "torn seal read accepted: {got:?}"
        );
        writer.join().unwrap();
    });
}
