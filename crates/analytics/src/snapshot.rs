//! The snapshot abstraction analytics kernels run against.

use livegraph_baselines::CsrGraph;
use livegraph_core::{Label, ReadTxn};

/// A read-only, consistent view of a graph's topology.
///
/// Kernels only need vertex counts, out-degrees and sequential neighbour
/// iteration; both LiveGraph read transactions and CSR graphs provide these.
/// Implementations must be safe to query from multiple threads.
pub trait GraphSnapshot: Sync {
    /// Number of vertices (vertex ids are `0..num_vertices()`).
    fn num_vertices(&self) -> u64;

    /// Out-degree of `v`.
    fn out_degree(&self, v: u64) -> u64 {
        let mut n = 0;
        self.for_each_neighbor(v, &mut |_| n += 1);
        n
    }

    /// Invokes `f` for every out-neighbour of `v`.
    fn for_each_neighbor(&self, v: u64, f: &mut dyn FnMut(u64));

    /// Total number of directed edges (default: sum of out-degrees).
    fn num_edges(&self) -> u64 {
        (0..self.num_vertices()).map(|v| self.out_degree(v)).sum()
    }
}

impl GraphSnapshot for CsrGraph {
    fn num_vertices(&self) -> u64 {
        CsrGraph::num_vertices(self)
    }

    fn out_degree(&self, v: u64) -> u64 {
        CsrGraph::out_degree(self, v)
    }

    fn for_each_neighbor(&self, v: u64, f: &mut dyn FnMut(u64)) {
        for &d in self.neighbors(v) {
            f(d);
        }
    }

    fn num_edges(&self) -> u64 {
        CsrGraph::num_edges(self)
    }
}

/// A [`GraphSnapshot`] over a LiveGraph read transaction: analytics run
/// *in situ* on the primary store, on the MVCC snapshot the transaction
/// pinned, while concurrent transactions keep executing (§7.4).
pub struct LiveSnapshot<'a, 'g> {
    txn: &'a ReadTxn<'g>,
    label: Label,
}

impl<'a, 'g> LiveSnapshot<'a, 'g> {
    /// Wraps a read transaction, scanning edges of the given label.
    pub fn new(txn: &'a ReadTxn<'g>, label: Label) -> Self {
        Self { txn, label }
    }
}

impl GraphSnapshot for LiveSnapshot<'_, '_> {
    fn num_vertices(&self) -> u64 {
        self.txn.vertex_count()
    }

    fn for_each_neighbor(&self, v: u64, f: &mut dyn FnMut(u64)) {
        for edge in self.txn.edges(v, self.label) {
            f(edge.dst);
        }
    }

    fn out_degree(&self, v: u64) -> u64 {
        self.txn.degree(v, self.label) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_snapshot_reports_counts_and_neighbors() {
        let csr = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (3, 0)]);
        let snap: &dyn GraphSnapshot = &csr;
        assert_eq!(snap.num_vertices(), 4);
        assert_eq!(snap.num_edges(), 3);
        assert_eq!(snap.out_degree(0), 2);
        let mut seen = Vec::new();
        snap.for_each_neighbor(0, &mut |d| seen.push(d));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn default_out_degree_counts_via_iteration() {
        struct Line;
        impl GraphSnapshot for Line {
            fn num_vertices(&self) -> u64 {
                3
            }
            fn for_each_neighbor(&self, v: u64, f: &mut dyn FnMut(u64)) {
                if v + 1 < 3 {
                    f(v + 1);
                }
            }
        }
        let line = Line;
        assert_eq!(line.out_degree(0), 1);
        assert_eq!(line.out_degree(2), 0);
        assert_eq!(line.num_edges(), 2);
    }
}
