//! The snapshot abstraction analytics kernels run against.

use livegraph_baselines::CsrGraph;
use livegraph_core::{Label, ReadTxn};

/// Chunk granularity of the *buffered* default
/// [`GraphSnapshot::for_each_neighbor_chunk`] implementation (matches the
/// engine's [`livegraph_core::NEIGHBOR_CHUNK`]). This is an amortisation
/// floor, **not** an upper bound on chunk length: snapshots with contiguous
/// adjacency (CSR) deliver a whole neighbour list as one chunk. Consumers
/// must treat chunks as arbitrary-length non-empty slices.
pub const NEIGHBOR_CHUNK: usize = livegraph_core::NEIGHBOR_CHUNK;

/// A read-only, consistent view of a graph's topology.
///
/// Kernels only need vertex counts, out-degrees and sequential neighbour
/// iteration; both LiveGraph read transactions and CSR graphs provide these.
/// Implementations must be safe to query from multiple threads.
///
/// Kernels should prefer [`GraphSnapshot::for_each_neighbor_chunk`]: the
/// trait object boundary costs one indirect call per *chunk* of up to
/// [`NEIGHBOR_CHUNK`] neighbours instead of one per neighbour, which is what
/// lets the engine's zero-check sealed scans pay off end-to-end.
pub trait GraphSnapshot: Sync {
    /// Number of vertices (vertex ids are `0..num_vertices()`).
    fn num_vertices(&self) -> u64;

    /// Out-degree of `v`.
    fn out_degree(&self, v: u64) -> u64 {
        let mut n = 0;
        self.for_each_neighbor_chunk(v, &mut |chunk| n += chunk.len() as u64);
        n
    }

    /// Invokes `f` for every out-neighbour of `v`.
    fn for_each_neighbor(&self, v: u64, f: &mut dyn FnMut(u64));

    /// Invokes `f` with dense runs of out-neighbours of `v`. Chunks are
    /// non-empty slices of *any* length: the buffered default flushes every
    /// [`NEIGHBOR_CHUNK`] vertices, while contiguous-adjacency
    /// implementations (CSR) may deliver the whole list in one call — do
    /// not size fixed buffers by [`NEIGHBOR_CHUNK`].
    ///
    /// The default buffers [`GraphSnapshot::for_each_neighbor`] through a
    /// stack array; implementations with contiguous adjacency (CSR) or a
    /// native chunked scan (LiveGraph) override it.
    fn for_each_neighbor_chunk(&self, v: u64, f: &mut dyn FnMut(&[u64])) {
        let mut buf = [0u64; NEIGHBOR_CHUNK];
        let mut len = 0usize;
        self.for_each_neighbor(v, &mut |d| {
            buf[len] = d;
            len += 1;
            if len == NEIGHBOR_CHUNK {
                f(&buf);
                len = 0;
            }
        });
        if len > 0 {
            f(&buf[..len]);
        }
    }

    /// Total number of directed edges (default: sum of out-degrees).
    fn num_edges(&self) -> u64 {
        (0..self.num_vertices()).map(|v| self.out_degree(v)).sum()
    }
}

impl GraphSnapshot for CsrGraph {
    fn num_vertices(&self) -> u64 {
        CsrGraph::num_vertices(self)
    }

    fn out_degree(&self, v: u64) -> u64 {
        CsrGraph::out_degree(self, v)
    }

    fn for_each_neighbor(&self, v: u64, f: &mut dyn FnMut(u64)) {
        for &d in self.neighbors(v) {
            f(d);
        }
    }

    fn for_each_neighbor_chunk(&self, v: u64, f: &mut dyn FnMut(&[u64])) {
        let neighbors = self.neighbors(v);
        if !neighbors.is_empty() {
            f(neighbors);
        }
    }

    fn num_edges(&self) -> u64 {
        CsrGraph::num_edges(self)
    }
}

/// A [`GraphSnapshot`] over a LiveGraph read transaction: analytics run
/// *in situ* on the primary store, on the MVCC snapshot the transaction
/// pinned, while concurrent transactions keep executing (§7.4).
pub struct LiveSnapshot<'a, 'g> {
    txn: &'a ReadTxn<'g>,
    label: Label,
}

impl<'a, 'g> LiveSnapshot<'a, 'g> {
    /// Wraps a read transaction, scanning edges of the given label.
    pub fn new(txn: &'a ReadTxn<'g>, label: Label) -> Self {
        Self { txn, label }
    }
}

impl GraphSnapshot for LiveSnapshot<'_, '_> {
    fn num_vertices(&self) -> u64 {
        self.txn.vertex_count()
    }

    fn for_each_neighbor(&self, v: u64, f: &mut dyn FnMut(u64)) {
        self.txn.for_each_neighbor(v, self.label, f);
    }

    fn for_each_neighbor_chunk(&self, v: u64, f: &mut dyn FnMut(&[u64])) {
        // Monomorphized down to the sealed TEL streaming scan; `f` is only
        // invoked once per chunk, so the dyn boundary cost is amortised.
        self.txn.for_each_neighbor_chunk(v, self.label, |chunk| f(chunk));
    }

    /// O(1) for sealed TELs: committed log size minus the header's
    /// committed-invalidation count (see `livegraph_core::tel`).
    fn out_degree(&self, v: u64) -> u64 {
        self.txn.degree(v, self.label) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_snapshot_reports_counts_and_neighbors() {
        let csr = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (3, 0)]);
        let snap: &dyn GraphSnapshot = &csr;
        assert_eq!(snap.num_vertices(), 4);
        assert_eq!(snap.num_edges(), 3);
        assert_eq!(snap.out_degree(0), 2);
        let mut seen = Vec::new();
        snap.for_each_neighbor(0, &mut |d| seen.push(d));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn csr_chunk_visitor_delivers_the_whole_list_at_once() {
        let csr = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (2, 0)]);
        let snap: &dyn GraphSnapshot = &csr;
        let mut chunks = Vec::new();
        snap.for_each_neighbor_chunk(0, &mut |c| chunks.push(c.to_vec()));
        assert_eq!(chunks, vec![vec![1, 2, 3]], "CSR is one contiguous chunk");
        let mut none = 0;
        snap.for_each_neighbor_chunk(1, &mut |_| none += 1);
        assert_eq!(none, 0, "empty lists produce no chunk callback");
    }

    #[test]
    fn default_chunk_visitor_buffers_and_flushes_the_tail() {
        // A snapshot that only implements the per-element visitor.
        struct Fan(u64);
        impl GraphSnapshot for Fan {
            fn num_vertices(&self) -> u64 {
                self.0 + 1
            }
            fn for_each_neighbor(&self, v: u64, f: &mut dyn FnMut(u64)) {
                if v == 0 {
                    for d in 1..=self.0 {
                        f(d);
                    }
                }
            }
        }
        let n = NEIGHBOR_CHUNK as u64 + 5;
        let fan = Fan(n);
        let mut sizes = Vec::new();
        let mut seen = Vec::new();
        fan.for_each_neighbor_chunk(0, &mut |c| {
            sizes.push(c.len());
            seen.extend_from_slice(c);
        });
        assert_eq!(sizes, vec![NEIGHBOR_CHUNK, 5]);
        assert_eq!(seen, (1..=n).collect::<Vec<_>>());
        assert_eq!(fan.out_degree(0), n, "default out_degree rides the chunks");
    }

    #[test]
    fn default_out_degree_counts_via_iteration() {
        struct Line;
        impl GraphSnapshot for Line {
            fn num_vertices(&self) -> u64 {
                3
            }
            fn for_each_neighbor(&self, v: u64, f: &mut dyn FnMut(u64)) {
                if v + 1 < 3 {
                    f(v + 1);
                }
            }
        }
        let line = Line;
        assert_eq!(line.out_degree(0), 1);
        assert_eq!(line.out_degree(2), 0);
        assert_eq!(line.num_edges(), 2);
    }
}
