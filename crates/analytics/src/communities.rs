//! Community detection via synchronous label propagation.
//!
//! A lightweight community detector used by the recommendation and fraud
//! examples: every vertex starts in its own community and repeatedly adopts
//! the most frequent community among its (undirected) neighbours, breaking
//! ties towards the smallest id. Synchronous updates with a bounded number
//! of rounds keep the result deterministic.

use std::collections::HashMap;

use crate::snapshot::GraphSnapshot;

/// Options for [`label_propagation`].
#[derive(Debug, Clone, Copy)]
pub struct LabelPropagationOptions {
    /// Maximum number of synchronous rounds (the algorithm usually converges
    /// in far fewer).
    pub max_rounds: usize,
}

impl Default for LabelPropagationOptions {
    fn default() -> Self {
        Self { max_rounds: 20 }
    }
}

/// Runs label propagation and returns one community id per vertex.
/// Community ids are vertex ids (the seed that won locally).
pub fn label_propagation<S: GraphSnapshot + ?Sized>(
    snapshot: &S,
    options: LabelPropagationOptions,
) -> Vec<u64> {
    let n = snapshot.num_vertices() as usize;
    let mut labels: Vec<u64> = (0..n as u64).collect();
    if n == 0 {
        return labels;
    }
    // Undirected adjacency, deduplicated once up front.
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    for v in 0..n as u64 {
        snapshot.for_each_neighbor_chunk(v, &mut |chunk| {
            for &u in chunk {
                if (u as usize) < n && u != v {
                    adj[v as usize].push(u);
                    adj[u as usize].push(v);
                }
            }
        });
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }

    let mut next = labels.clone();
    for _ in 0..options.max_rounds {
        let mut changed = false;
        for v in 0..n {
            if adj[v].is_empty() {
                continue;
            }
            let mut counts: HashMap<u64, usize> = HashMap::with_capacity(adj[v].len());
            for &u in &adj[v] {
                *counts.entry(labels[u as usize]).or_insert(0) += 1;
            }
            // Most frequent label; ties go to the smallest label id.
            let mut best = labels[v];
            let mut best_count = 0usize;
            let mut candidates: Vec<(u64, usize)> = counts.into_iter().collect();
            candidates.sort_unstable();
            for (label, count) in candidates {
                if count > best_count {
                    best = label;
                    best_count = count;
                }
            }
            if best != labels[v] {
                changed = true;
            }
            next[v] = best;
        }
        std::mem::swap(&mut labels, &mut next);
        if !changed {
            break;
        }
    }
    labels
}

/// Groups vertices by community id, largest community first.
pub fn communities_by_size(labels: &[u64]) -> Vec<Vec<u64>> {
    let mut groups: HashMap<u64, Vec<u64>> = HashMap::new();
    for (v, &label) in labels.iter().enumerate() {
        groups.entry(label).or_default().push(v as u64);
    }
    let mut out: Vec<Vec<u64>> = groups.into_values().collect();
    out.sort_by_key(|group| std::cmp::Reverse((group.len(), std::cmp::Reverse(group[0]))));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_baselines::CsrGraph;

    fn clique(offset: u64, size: u64, edges: &mut Vec<(u64, u64)>) {
        for a in 0..size {
            for b in (a + 1)..size {
                edges.push((offset + a, offset + b));
            }
        }
    }

    #[test]
    fn two_cliques_with_a_bridge_form_two_communities() {
        let mut edges = Vec::new();
        clique(0, 5, &mut edges);
        clique(5, 5, &mut edges);
        edges.push((4, 5)); // weak bridge
        let g = CsrGraph::from_edges(10, &edges);
        let labels = label_propagation(&g, LabelPropagationOptions::default());
        for v in 1..5 {
            assert_eq!(labels[v], labels[0], "first clique must agree");
        }
        for v in 6..10 {
            assert_eq!(labels[v], labels[5], "second clique must agree");
        }
        assert_ne!(labels[0], labels[9], "bridge must not merge the cliques");
    }

    #[test]
    fn isolated_vertices_keep_their_own_community() {
        let g = CsrGraph::from_edges(3, &[]);
        let labels = label_propagation(&g, LabelPropagationOptions::default());
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(label_propagation(&g, LabelPropagationOptions::default()).is_empty());
    }

    #[test]
    fn communities_by_size_orders_largest_first() {
        let labels = vec![0, 0, 0, 3, 3, 5];
        let groups = communities_by_size(&labels);
        assert_eq!(groups[0], vec![0, 1, 2]);
        assert_eq!(groups[1], vec![3, 4]);
        assert_eq!(groups[2], vec![5]);
    }

    #[test]
    fn max_rounds_zero_leaves_singletons() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let labels = label_propagation(&g, LabelPropagationOptions { max_rounds: 0 });
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }
}
