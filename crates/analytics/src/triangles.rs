//! Triangle counting over an undirected view of the graph.
//!
//! Triangle counts drive clustering-coefficient style features used by the
//! paper's motivating applications (recommendations, fraud detection on
//! "who-knows-whom" rings). The kernel materialises a deduplicated,
//! direction-normalised adjacency (smaller id → larger id), then counts
//! ordered intersections — the standard node-iterator algorithm.

use crate::snapshot::GraphSnapshot;

/// Counts the number of distinct triangles, treating edges as undirected and
/// ignoring self-loops and parallel edges.
pub fn count_triangles<S: GraphSnapshot + ?Sized>(snapshot: &S, threads: usize) -> u64 {
    let n = snapshot.num_vertices() as usize;
    if n < 3 {
        return 0;
    }
    // Forward adjacency: v -> {u : u > v, (v,u) or (u,v) is an edge}.
    let mut forward: Vec<Vec<u64>> = vec![Vec::new(); n];
    for v in 0..n as u64 {
        snapshot.for_each_neighbor_chunk(v, &mut |chunk| {
            for &u in chunk {
                if u as usize >= n || u == v {
                    continue;
                }
                let (lo, hi) = if v < u { (v, u) } else { (u, v) };
                forward[lo as usize].push(hi);
            }
        });
    }
    for list in &mut forward {
        list.sort_unstable();
        list.dedup();
    }

    let threads = threads.max(1);
    let chunk = n.div_ceil(threads);
    let forward = &forward;
    let mut total = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            handles.push(scope.spawn(move || {
                let mut local = 0u64;
                for v in start..end {
                    let nv = &forward[v];
                    for &u in nv {
                        // |forward[v] ∩ forward[u]| — both sorted.
                        let nu = &forward[u as usize];
                        let (mut i, mut j) = (0usize, 0usize);
                        while i < nv.len() && j < nu.len() {
                            match nv[i].cmp(&nu[j]) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    local += 1;
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                    }
                }
                local
            }));
        }
        for h in handles {
            total += h.join().expect("triangle worker panicked");
        }
    });
    total
}

/// Global clustering coefficient: `3 * triangles / open-or-closed wedges`.
/// Returns 0.0 for graphs without any wedge.
pub fn global_clustering_coefficient<S: GraphSnapshot + ?Sized>(snapshot: &S, threads: usize) -> f64 {
    let n = snapshot.num_vertices() as usize;
    if n == 0 {
        return 0.0;
    }
    // Undirected degrees (deduplicated).
    let mut degree = vec![0u64; n];
    let mut und: Vec<Vec<u64>> = vec![Vec::new(); n];
    for v in 0..n as u64 {
        snapshot.for_each_neighbor_chunk(v, &mut |chunk| {
            for &u in chunk {
                if u as usize >= n || u == v {
                    continue;
                }
                und[v as usize].push(u);
                und[u as usize].push(v);
            }
        });
    }
    for (v, list) in und.iter_mut().enumerate() {
        list.sort_unstable();
        list.dedup();
        degree[v] = list.len() as u64;
    }
    let wedges: u64 = degree.iter().map(|&d| d * d.saturating_sub(1) / 2).sum();
    if wedges == 0 {
        return 0.0;
    }
    let triangles = count_triangles(snapshot, threads);
    3.0 * triangles as f64 / wedges as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_baselines::CsrGraph;

    #[test]
    fn single_triangle() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_triangles(&g, 1), 1);
        assert!((global_clustering_coefficient(&g, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_disjoint_triangles_and_noise() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3), (6, 0)];
        let g = CsrGraph::from_edges(7, &edges);
        assert_eq!(count_triangles(&g, 1), 2);
    }

    #[test]
    fn direction_and_duplicates_do_not_double_count() {
        // Same triangle expressed with both directions and a repeated edge.
        let edges = vec![(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2), (0, 1)];
        let g = CsrGraph::from_edges(3, &edges);
        assert_eq!(count_triangles(&g, 2), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let g = CsrGraph::from_edges(3, &[(0, 0), (0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_triangles(&g, 1), 1);
    }

    #[test]
    fn square_has_no_triangle_and_zero_clustering() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_triangles(&g, 1), 0);
        assert_eq!(global_clustering_coefficient(&g, 1), 0.0);
    }

    #[test]
    fn complete_graph_k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for a in 0..5u64 {
            for b in (a + 1)..5u64 {
                edges.push((a, b));
            }
        }
        let g = CsrGraph::from_edges(5, &edges);
        assert_eq!(count_triangles(&g, 3), 10);
        assert!((global_clustering_coefficient(&g, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let edges: Vec<(u64, u64)> = (0..600u64).map(|i| (i % 50, (i * 17 + 3) % 50)).collect();
        let g = CsrGraph::from_edges(50, &edges);
        assert_eq!(count_triangles(&g, 1), count_triangles(&g, 4));
    }

    #[test]
    fn tiny_graphs_have_no_triangles() {
        assert_eq!(count_triangles(&CsrGraph::from_edges(0, &[]), 1), 0);
        assert_eq!(count_triangles(&CsrGraph::from_edges(2, &[(0, 1)]), 1), 0);
    }
}
