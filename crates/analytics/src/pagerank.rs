//! PageRank over a [`GraphSnapshot`] (Table 10 of the paper).
//!
//! Push-based, synchronous iterations: every vertex distributes its current
//! rank over its out-edges into a `next` array; dangling vertices contribute
//! their rank uniformly. Parallelism partitions the vertex range across
//! threads and accumulates contributions with CAS on the f64 bit pattern,
//! so the result is deterministic up to floating-point addition order.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::snapshot::GraphSnapshot;

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Number of synchronous iterations (the paper runs 20).
    pub iterations: usize,
    /// Damping factor.
    pub damping: f64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        Self {
            iterations: 20,
            damping: 0.85,
            threads: 1,
        }
    }
}

fn atomic_add_f64(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(current) + value;
        match cell.compare_exchange_weak(current, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Runs PageRank and returns one score per vertex.
pub fn pagerank<S: GraphSnapshot + ?Sized>(snapshot: &S, options: PageRankOptions) -> Vec<f64> {
    let n = snapshot.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let threads = options.threads.max(1);
    let mut ranks = vec![1.0 / n as f64; n];
    let next: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();

    for _ in 0..options.iterations {
        for cell in &next {
            cell.store(0f64.to_bits(), Ordering::Relaxed);
        }
        let dangling = AtomicU64::new(0f64.to_bits());
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let ranks = &ranks;
                let next = &next;
                let dangling = &dangling;
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n);
                scope.spawn(move || {
                    for (v, &rank) in ranks.iter().enumerate().take(end).skip(start) {
                        let degree = snapshot.out_degree(v as u64);
                        if degree == 0 {
                            atomic_add_f64(dangling, rank);
                            continue;
                        }
                        let share = rank / degree as f64;
                        snapshot.for_each_neighbor_chunk(v as u64, &mut |chunk| {
                            for &d in chunk {
                                atomic_add_f64(&next[d as usize], share);
                            }
                        });
                    }
                });
            }
        });
        let dangling_share = f64::from_bits(dangling.load(Ordering::Relaxed)) / n as f64;
        let base = (1.0 - options.damping) / n as f64;
        for (v, rank) in ranks.iter_mut().enumerate() {
            let pushed = f64::from_bits(next[v].load(Ordering::Relaxed));
            *rank = base + options.damping * (pushed + dangling_share);
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_baselines::CsrGraph;

    fn cycle(n: u64) -> CsrGraph {
        let edges: Vec<(u64, u64)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn uniform_on_a_symmetric_cycle() {
        let g = cycle(10);
        let pr = pagerank(&g, PageRankOptions::default());
        for &r in &pr {
            assert!((r - 0.1).abs() < 1e-9, "cycle vertices share rank equally");
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 0), (4, 0)];
        let g = CsrGraph::from_edges(5, &edges);
        let pr = pagerank(&g, PageRankOptions::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "probability mass preserved, got {sum}");
    }

    #[test]
    fn hub_receives_more_rank_than_spokes() {
        // Star: every spoke points to vertex 0; 0 points back to spoke 1.
        let mut edges = vec![(0u64, 1u64)];
        for v in 1..20u64 {
            edges.push((v, 0));
        }
        let g = CsrGraph::from_edges(20, &edges);
        let pr = pagerank(&g, PageRankOptions::default());
        assert!(pr[0] > pr[5] * 5.0, "hub must dominate");
    }

    #[test]
    fn parallel_matches_sequential() {
        let edges: Vec<(u64, u64)> = (0..500u64)
            .map(|i| (i % 97, (i * 31 + 7) % 97))
            .collect();
        let g = CsrGraph::from_edges(97, &edges);
        let seq = pagerank(&g, PageRankOptions { threads: 1, ..Default::default() });
        let par = pagerank(&g, PageRankOptions { threads: 4, ..Default::default() });
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph_yields_empty_result() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(pagerank(&g, PageRankOptions::default()).is_empty());
    }

    #[test]
    fn dangling_vertices_do_not_lose_mass() {
        // 0 -> 1, 1 has no out-edges.
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let pr = pagerank(&g, PageRankOptions::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(pr[1] > pr[0]);
    }
}
