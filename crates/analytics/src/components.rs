//! Connected components via label propagation (Table 10, "ConnComp").
//!
//! Edges are treated as undirected (the paper's ConnComp runs until
//! convergence on the person–knows–person subgraph). Each vertex starts in
//! its own component; every iteration propagates the minimum component id
//! across each edge in both directions until no label changes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::snapshot::GraphSnapshot;

fn atomic_min(cell: &AtomicU64, value: u64) -> bool {
    let mut cur = cell.load(Ordering::Relaxed);
    while value < cur {
        match cell.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

/// Computes connected components (undirected semantics) and returns the
/// component id of every vertex. Component ids are the minimum vertex id of
/// the component.
pub fn connected_components<S: GraphSnapshot + ?Sized>(snapshot: &S, threads: usize) -> Vec<u64> {
    let n = snapshot.num_vertices() as usize;
    let threads = threads.max(1);
    let labels: Vec<AtomicU64> = (0..n as u64).map(AtomicU64::new).collect();
    if n == 0 {
        return Vec::new();
    }
    loop {
        let changed = AtomicBool::new(false);
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let labels = &labels;
                let changed = &changed;
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n);
                scope.spawn(move || {
                    for v in start..end {
                        let lv = labels[v].load(Ordering::Relaxed);
                        snapshot.for_each_neighbor_chunk(v as u64, &mut |chunk| {
                            for &d in chunk {
                                let ld = labels[d as usize].load(Ordering::Relaxed);
                                let m = lv.min(ld);
                                if atomic_min(&labels[d as usize], m) | atomic_min(&labels[v], m) {
                                    changed.store(true, Ordering::Relaxed);
                                }
                            }
                        });
                    }
                });
            }
        });
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    labels.into_iter().map(|l| l.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_baselines::CsrGraph;

    #[test]
    fn two_triangles_and_an_isolated_vertex() {
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        let g = CsrGraph::from_edges(7, &edges);
        let cc = connected_components(&g, 1);
        assert_eq!(cc[0], cc[1]);
        assert_eq!(cc[1], cc[2]);
        assert_eq!(cc[3], cc[4]);
        assert_eq!(cc[4], cc[5]);
        assert_ne!(cc[0], cc[3]);
        assert_eq!(cc[6], 6, "isolated vertex is its own component");
    }

    #[test]
    fn directed_edges_are_treated_as_undirected() {
        // A chain of one-way edges still forms a single component.
        let edges = vec![(4, 3), (3, 2), (2, 1), (1, 0)];
        let g = CsrGraph::from_edges(5, &edges);
        let cc = connected_components(&g, 1);
        assert!(cc.iter().all(|&c| c == 0), "chain must collapse to component 0");
    }

    #[test]
    fn parallel_matches_sequential() {
        let edges: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 80, (i * 13 + 5) % 80)).collect();
        let g = CsrGraph::from_edges(80, &edges);
        assert_eq!(connected_components(&g, 1), connected_components(&g, 4));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(connected_components(&g, 2).is_empty());
    }

    #[test]
    fn component_count_matches_structure() {
        // 10 isolated pairs → 10 components.
        let edges: Vec<(u64, u64)> = (0..10u64).map(|i| (2 * i, 2 * i + 1)).collect();
        let g = CsrGraph::from_edges(20, &edges);
        let cc = connected_components(&g, 2);
        let mut ids: Vec<u64> = cc.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        for i in 0..10u64 {
            assert_eq!(cc[2 * i as usize], cc[2 * i as usize + 1]);
        }
    }
}
