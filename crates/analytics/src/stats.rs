//! Descriptive graph statistics.
//!
//! The paper leans on the power-law degree distribution of real-world graphs
//! in several design decisions (block growth policy, buddy allocator split,
//! Bloom-filter sizing) and Figure 7b validates it by plotting the block-size
//! histogram. This module computes the corresponding topological statistics
//! directly from a [`GraphSnapshot`]: degree histograms, distribution
//! moments, and a log–log slope estimate of the degree distribution's tail.

use crate::snapshot::GraphSnapshot;

/// Summary statistics of a graph's out-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub vertices: u64,
    /// Number of directed edges.
    pub edges: u64,
    /// Minimum out-degree.
    pub min: u64,
    /// Maximum out-degree.
    pub max: u64,
    /// Mean out-degree.
    pub mean: f64,
    /// Out-degree at the 50th / 90th / 99th percentile.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Number of vertices with no out-edges.
    pub zero_degree: u64,
}

/// Computes [`DegreeStats`] over a snapshot.
pub fn degree_stats<S: GraphSnapshot + ?Sized>(snapshot: &S) -> DegreeStats {
    let n = snapshot.num_vertices();
    let mut degrees: Vec<u64> = (0..n).map(|v| snapshot.out_degree(v)).collect();
    degrees.sort_unstable();
    let edges: u64 = degrees.iter().sum();
    let pct = |p: f64| -> u64 {
        if degrees.is_empty() {
            0
        } else {
            let idx = ((degrees.len() - 1) as f64 * p).round() as usize;
            degrees[idx]
        }
    };
    DegreeStats {
        vertices: n,
        edges,
        min: degrees.first().copied().unwrap_or(0),
        max: degrees.last().copied().unwrap_or(0),
        mean: if n == 0 { 0.0 } else { edges as f64 / n as f64 },
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        zero_degree: degrees.iter().take_while(|&&d| d == 0).count() as u64,
    }
}

/// Histogram of out-degrees bucketed by powers of two:
/// bucket `i` counts vertices with degree in `[2^i, 2^(i+1))`, with a
/// dedicated first entry for degree 0. Returned as `(bucket label, count)`.
pub fn degree_histogram<S: GraphSnapshot + ?Sized>(snapshot: &S) -> Vec<(String, u64)> {
    let n = snapshot.num_vertices();
    let mut zero = 0u64;
    let mut buckets: Vec<u64> = Vec::new();
    for v in 0..n {
        let d = snapshot.out_degree(v);
        if d == 0 {
            zero += 1;
            continue;
        }
        let bucket = 63 - d.leading_zeros() as usize; // floor(log2(d))
        if buckets.len() <= bucket {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += 1;
    }
    let mut out = vec![("0".to_string(), zero)];
    for (i, &count) in buckets.iter().enumerate() {
        out.push((format!("[{}, {})", 1u64 << i, 1u64 << (i + 1)), count));
    }
    out
}

/// Least-squares slope of `log(count)` against `log(degree)` over the
/// non-empty power-of-two buckets — a quick estimate of the power-law
/// exponent (reported as a positive alpha). Returns `None` when fewer than
/// three non-empty buckets exist.
pub fn power_law_exponent<S: GraphSnapshot + ?Sized>(snapshot: &S) -> Option<f64> {
    let histogram = degree_histogram(snapshot);
    let points: Vec<(f64, f64)> = histogram
        .iter()
        .skip(1) // degree-0 bucket
        .enumerate()
        .filter(|(_, (_, count))| *count > 0)
        .map(|(i, (_, count))| (((1u64 << i) as f64).ln(), (*count as f64).ln()))
        .collect();
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let sum_x: f64 = points.iter().map(|(x, _)| x).sum();
    let sum_y: f64 = points.iter().map(|(_, y)| y).sum();
    let sum_xy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let sum_xx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let denom = n * sum_xx - sum_x * sum_x;
    if denom.abs() < f64::EPSILON {
        return None;
    }
    let slope = (n * sum_xy - sum_x * sum_y) / denom;
    Some(-slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_baselines::CsrGraph;

    fn star(spokes: u64) -> CsrGraph {
        let edges: Vec<(u64, u64)> = (1..=spokes).map(|s| (0, s)).collect();
        CsrGraph::from_edges(spokes + 1, &edges)
    }

    #[test]
    fn stats_of_a_star_graph() {
        let g = star(10);
        let stats = degree_stats(&g);
        assert_eq!(stats.vertices, 11);
        assert_eq!(stats.edges, 10);
        assert_eq!(stats.max, 10);
        assert_eq!(stats.min, 0);
        assert_eq!(stats.zero_degree, 10);
        assert!((stats.mean - 10.0 / 11.0).abs() < 1e-12);
        assert_eq!(stats.p50, 0);
        assert_eq!(stats.p99, 10);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        // Degrees: 0, 1, 2, 3, 4 across five source vertices.
        let mut edges = Vec::new();
        for (v, d) in [(1u64, 1u64), (2, 2), (3, 3), (4, 4)] {
            for i in 0..d {
                edges.push((v, (10 + i) % 5));
            }
        }
        let g = CsrGraph::from_edges(5, &edges);
        let hist = degree_histogram(&g);
        assert_eq!(hist[0], ("0".to_string(), 1));
        assert_eq!(hist[1], ("[1, 2)".to_string(), 1));
        assert_eq!(hist[2], ("[2, 4)".to_string(), 2));
        assert_eq!(hist[3], ("[4, 8)".to_string(), 1));
    }

    #[test]
    fn empty_graph_statistics_are_well_defined() {
        let g = CsrGraph::from_edges(0, &[]);
        let stats = degree_stats(&g);
        assert_eq!(stats.vertices, 0);
        assert_eq!(stats.edges, 0);
        assert_eq!(stats.mean, 0.0);
        assert_eq!(degree_histogram(&g), vec![("0".to_string(), 0)]);
        assert_eq!(power_law_exponent(&g), None);
    }

    #[test]
    fn power_law_exponent_detects_skewed_distributions() {
        // Construct a synthetic graph whose bucket counts decay as ~2^-2i:
        // 256 vertices of degree 1, 64 of degree 2, 16 of degree 4, 4 of
        // degree 8, 1 of degree 16.
        let mut edges = Vec::new();
        let mut next = 0u64;
        let add_group = |count: u64, degree: u64, edges: &mut Vec<(u64, u64)>, next: &mut u64| {
            for _ in 0..count {
                let v = *next;
                *next += 1;
                for i in 0..degree {
                    edges.push((v, (v + i + 1) % 400));
                }
            }
        };
        add_group(256, 1, &mut edges, &mut next);
        add_group(64, 2, &mut edges, &mut next);
        add_group(16, 4, &mut edges, &mut next);
        add_group(4, 8, &mut edges, &mut next);
        add_group(1, 16, &mut edges, &mut next);
        let g = CsrGraph::from_edges(400, &edges);
        let alpha = power_law_exponent(&g).expect("enough buckets");
        assert!(alpha > 1.5 && alpha < 2.5, "expected alpha ≈ 2, got {alpha}");
    }

    #[test]
    fn uniform_degrees_give_near_zero_exponent_or_none() {
        // Every vertex has degree 2: only one non-empty bucket → None.
        let edges: Vec<(u64, u64)> = (0..50u64).flat_map(|v| [(v, (v + 1) % 50), (v, (v + 2) % 50)]).collect();
        let g = CsrGraph::from_edges(50, &edges);
        assert_eq!(power_law_exponent(&g), None);
    }
}
