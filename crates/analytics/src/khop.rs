//! k-hop neighbourhood expansion.
//!
//! LDBC SNB's "complex read 1" visits the 3-hop friendship neighbourhood of
//! a person; TAO-style production reads frequently expand 1- and 2-hop
//! neighbourhoods. This module provides the shared frontier-expansion
//! helper, both as a plain vertex set and with per-vertex hop distances.

use std::collections::VecDeque;

use crate::snapshot::GraphSnapshot;

/// Returns all vertices reachable from `root` within at most `k` hops,
/// excluding `root` itself, in ascending vertex-id order.
pub fn k_hop_neighborhood<S: GraphSnapshot + ?Sized>(snapshot: &S, root: u64, k: u64) -> Vec<u64> {
    k_hop_with_distances(snapshot, root, k)
        .into_iter()
        .map(|(v, _)| v)
        .collect()
}

/// Returns `(vertex, hop distance)` for every vertex within `k` hops of
/// `root` (excluding the root), ordered by vertex id.
pub fn k_hop_with_distances<S: GraphSnapshot + ?Sized>(
    snapshot: &S,
    root: u64,
    k: u64,
) -> Vec<(u64, u64)> {
    let n = snapshot.num_vertices() as usize;
    if (root as usize) >= n || k == 0 {
        return Vec::new();
    }
    let mut dist = vec![u64::MAX; n];
    dist[root as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d == k {
            continue;
        }
        snapshot.for_each_neighbor_chunk(v, &mut |chunk| {
            for &u in chunk {
                if (u as usize) < n && dist[u as usize] == u64::MAX {
                    dist[u as usize] = d + 1;
                    queue.push_back(u);
                }
            }
        });
    }
    let mut out: Vec<(u64, u64)> = dist
        .into_iter()
        .enumerate()
        .filter(|&(v, d)| v as u64 != root && d != u64::MAX && d <= k)
        .map(|(v, d)| (v as u64, d))
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_baselines::CsrGraph;

    fn sample() -> CsrGraph {
        // 0 -> 1 -> 2 -> 3 -> 4, plus 0 -> 5, 5 -> 2.
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 2)])
    }

    #[test]
    fn one_hop_is_the_direct_neighbourhood() {
        let g = sample();
        assert_eq!(k_hop_neighborhood(&g, 0, 1), vec![1, 5]);
    }

    #[test]
    fn hops_accumulate_and_keep_shortest_distance() {
        let g = sample();
        let two = k_hop_with_distances(&g, 0, 2);
        assert_eq!(two, vec![(1, 1), (2, 2), (5, 1)]);
        let three = k_hop_with_distances(&g, 0, 3);
        assert!(three.contains(&(3, 3)));
        assert!(!three.contains(&(4, 4)), "4 is four hops away");
    }

    #[test]
    fn zero_hops_or_invalid_root_is_empty() {
        let g = sample();
        assert!(k_hop_neighborhood(&g, 0, 0).is_empty());
        assert!(k_hop_neighborhood(&g, 99, 3).is_empty());
    }

    #[test]
    fn root_is_never_included_even_on_cycles() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let hops = k_hop_neighborhood(&g, 0, 5);
        assert_eq!(hops, vec![1, 2]);
    }

    #[test]
    fn large_k_saturates_at_the_reachable_set() {
        let g = sample();
        assert_eq!(k_hop_neighborhood(&g, 0, 100), vec![1, 2, 3, 4, 5]);
    }
}
