//! Breadth-first search over a [`GraphSnapshot`].
//!
//! Used by the LDBC SNB complex read 13 reproduction (pairwise shortest
//! path) and as a building block for multi-hop neighbourhood queries.

use std::collections::VecDeque;

use crate::snapshot::GraphSnapshot;

/// Level of each vertex from `root` (-1 if unreachable).
pub fn bfs<S: GraphSnapshot + ?Sized>(snapshot: &S, root: u64) -> Vec<i64> {
    let n = snapshot.num_vertices() as usize;
    let mut levels = vec![-1i64; n];
    if (root as usize) >= n {
        return levels;
    }
    let mut queue = VecDeque::new();
    levels[root as usize] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let next_level = levels[v as usize] + 1;
        snapshot.for_each_neighbor_chunk(v, &mut |chunk| {
            for &d in chunk {
                if levels[d as usize] < 0 {
                    levels[d as usize] = next_level;
                    queue.push_back(d);
                }
            }
        });
    }
    levels
}

/// Length of the shortest directed path from `src` to `dst`, if any.
/// Early-exits as soon as `dst` is settled.
pub fn shortest_path_length<S: GraphSnapshot + ?Sized>(
    snapshot: &S,
    src: u64,
    dst: u64,
) -> Option<u64> {
    let n = snapshot.num_vertices() as usize;
    if src as usize >= n || dst as usize >= n {
        return None;
    }
    if src == dst {
        return Some(0);
    }
    let mut levels = vec![-1i64; n];
    let mut queue = VecDeque::new();
    levels[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let next_level = levels[v as usize] + 1;
        let mut found = false;
        snapshot.for_each_neighbor_chunk(v, &mut |chunk| {
            for &d in chunk {
                if levels[d as usize] < 0 {
                    levels[d as usize] = next_level;
                    if d == dst {
                        found = true;
                    }
                    queue.push_back(d);
                }
            }
        });
        if found {
            return Some(next_level as u64);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_baselines::CsrGraph;

    fn chain(n: u64) -> CsrGraph {
        let edges: Vec<(u64, u64)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn levels_on_a_chain() {
        let g = chain(5);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs(&g, 3), vec![-1, -1, -1, 0, 1]);
    }

    #[test]
    fn unreachable_vertices_are_minus_one() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let levels = bfs(&g, 0);
        assert_eq!(levels, vec![0, 1, -1, -1]);
    }

    #[test]
    fn out_of_range_root_returns_all_unreachable() {
        let g = chain(3);
        assert_eq!(bfs(&g, 10), vec![-1, -1, -1]);
    }

    #[test]
    fn shortest_path_basic_cases() {
        let g = chain(6);
        assert_eq!(shortest_path_length(&g, 0, 5), Some(5));
        assert_eq!(shortest_path_length(&g, 2, 2), Some(0));
        assert_eq!(shortest_path_length(&g, 5, 0), None, "edges are directed");
        assert_eq!(shortest_path_length(&g, 0, 99), None);
    }

    #[test]
    fn shortest_path_prefers_shortcut() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (0, 3)];
        let g = CsrGraph::from_edges(4, &edges);
        assert_eq!(shortest_path_length(&g, 0, 3), Some(1));
    }
}
