//! Personalized PageRank (random walk with restart).
//!
//! The paper's introduction motivates LiveGraph with real-time
//! recommendations computed over a user's *latest* interactions; personalized
//! PageRank from the user's vertex over the fresh snapshot is the canonical
//! kernel for that. The implementation is the same synchronous push scheme as
//! [`crate::pagerank`], but teleportation returns to the seed set instead of
//! being spread uniformly.

use crate::snapshot::GraphSnapshot;

/// Options for [`personalized_pagerank`].
#[derive(Debug, Clone, Copy)]
pub struct PersonalizedPageRankOptions {
    /// Number of synchronous iterations.
    pub iterations: usize,
    /// Damping factor (probability of following an out-edge rather than
    /// restarting at the seed set).
    pub damping: f64,
}

impl Default for PersonalizedPageRankOptions {
    fn default() -> Self {
        Self {
            iterations: 30,
            damping: 0.85,
        }
    }
}

/// Runs personalized PageRank from `seeds` and returns one score per vertex.
/// Scores sum to ~1.0; vertices unreachable from the seeds score 0.
pub fn personalized_pagerank<S: GraphSnapshot + ?Sized>(
    snapshot: &S,
    seeds: &[u64],
    options: PersonalizedPageRankOptions,
) -> Vec<f64> {
    let n = snapshot.num_vertices() as usize;
    if n == 0 || seeds.is_empty() {
        return vec![0.0; n];
    }
    let valid_seeds: Vec<u64> = seeds.iter().copied().filter(|&s| (s as usize) < n).collect();
    if valid_seeds.is_empty() {
        return vec![0.0; n];
    }
    let restart = 1.0 / valid_seeds.len() as f64;
    let mut restart_vec = vec![0.0; n];
    for &s in &valid_seeds {
        restart_vec[s as usize] += restart;
    }

    let mut ranks = restart_vec.clone();
    let mut next = vec![0.0; n];
    for _ in 0..options.iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for (v, &rank) in ranks.iter().enumerate() {
            if rank == 0.0 {
                continue;
            }
            let degree = snapshot.out_degree(v as u64);
            if degree == 0 {
                dangling += rank;
                continue;
            }
            let share = rank / degree as f64;
            snapshot.for_each_neighbor_chunk(v as u64, &mut |chunk| {
                for &d in chunk {
                    next[d as usize] += share;
                }
            });
        }
        for v in 0..n {
            // Dangling mass and teleportation both restart at the seeds.
            ranks[v] = (1.0 - options.damping) * restart_vec[v]
                + options.damping * (next[v] + dangling * restart_vec[v]);
        }
    }
    ranks
}

/// Convenience helper: the `k` highest-scoring vertices excluding the seeds
/// themselves (typical "people you may know" / "products you may like"
/// output). Deterministic: ties are broken by vertex id.
pub fn top_k_recommendations<S: GraphSnapshot + ?Sized>(
    snapshot: &S,
    seeds: &[u64],
    k: usize,
    options: PersonalizedPageRankOptions,
) -> Vec<(u64, f64)> {
    let scores = personalized_pagerank(snapshot, seeds, options);
    let seed_set: std::collections::HashSet<u64> = seeds.iter().copied().collect();
    let mut ranked: Vec<(u64, f64)> = scores
        .into_iter()
        .enumerate()
        .map(|(v, s)| (v as u64, s))
        .filter(|(v, s)| !seed_set.contains(v) && *s > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_baselines::CsrGraph;

    #[test]
    fn mass_is_conserved_and_concentrated_near_the_seed() {
        // Chain 0 -> 1 -> 2 -> 3 with a side branch 1 -> 4.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (1, 4)]);
        let pr = personalized_pagerank(&g, &[0], PersonalizedPageRankOptions::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "probability mass preserved, got {sum}");
        assert!(pr[0] > pr[3], "seed outranks distant vertices");
        assert!(pr[1] > pr[2], "closer vertices rank higher");
    }

    #[test]
    fn unreachable_vertices_score_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let pr = personalized_pagerank(&g, &[0], PersonalizedPageRankOptions::default());
        assert_eq!(pr[2], 0.0);
        assert_eq!(pr[3], 0.0);
        assert!(pr[1] > 0.0);
    }

    #[test]
    fn multiple_seeds_split_the_restart_mass() {
        let g = CsrGraph::from_edges(4, &[(0, 2), (1, 3)]);
        let pr = personalized_pagerank(&g, &[0, 1], PersonalizedPageRankOptions::default());
        assert!((pr[0] - pr[1]).abs() < 1e-12, "symmetric seeds score equally");
        assert!((pr[2] - pr[3]).abs() < 1e-12);
    }

    #[test]
    fn empty_or_invalid_seeds_yield_zeros() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        assert!(personalized_pagerank(&g, &[], PersonalizedPageRankOptions::default())
            .iter()
            .all(|&x| x == 0.0));
        assert!(personalized_pagerank(&g, &[99], PersonalizedPageRankOptions::default())
            .iter()
            .all(|&x| x == 0.0));
    }

    #[test]
    fn top_k_excludes_seeds_and_orders_by_score() {
        // Star from 0 to 1..=3, plus 1 -> 4 making 4 reachable but remote.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 4)]);
        let recs = top_k_recommendations(&g, &[0], 3, PersonalizedPageRankOptions::default());
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|(v, _)| *v != 0), "seed must be excluded");
        assert!(recs[0].1 >= recs[1].1 && recs[1].1 >= recs[2].1);
        // Vertex 1 feeds vertex 4, so 1 must appear before 4.
        let pos1 = recs.iter().position(|(v, _)| *v == 1).unwrap();
        let pos4 = recs.iter().position(|(v, _)| *v == 4);
        if let Some(pos4) = pos4 {
            assert!(pos1 < pos4);
        }
    }
}
