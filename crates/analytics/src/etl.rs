//! ETL: exporting a snapshot into CSR (the cost Table 10 charges to the
//! "dedicated graph engine" workflow).
//!
//! Static graph engines such as Gemini only ingest their own compact format,
//! so analysing a live transactional graph with them means extracting every
//! adjacency list and rebuilding CSR first. LiveGraph's pitch is that its
//! in-situ analytics, while somewhat slower per iteration than CSR, skip
//! this step entirely.

use livegraph_baselines::CsrGraph;

use crate::snapshot::GraphSnapshot;

/// Materialises a [`GraphSnapshot`] into a [`CsrGraph`].
pub fn snapshot_to_csr<S: GraphSnapshot + ?Sized>(snapshot: &S) -> CsrGraph {
    let n = snapshot.num_vertices();
    let mut adjacency: Vec<Vec<u64>> = Vec::with_capacity(n as usize);
    for v in 0..n {
        let mut list = Vec::with_capacity(snapshot.out_degree(v) as usize);
        snapshot.for_each_neighbor_chunk(v, &mut |chunk| list.extend_from_slice(chunk));
        adjacency.push(list);
    }
    CsrGraph::from_adjacency(&adjacency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::LiveSnapshot;
    use livegraph_core::{LiveGraph, LiveGraphOptions};

    #[test]
    fn csr_roundtrip_is_identity() {
        let edges = vec![(0, 1), (0, 2), (2, 0), (3, 1)];
        let original = CsrGraph::from_edges(4, &edges);
        let copy = snapshot_to_csr(&original);
        assert_eq!(original, copy);
    }

    #[test]
    fn livegraph_export_preserves_topology_of_the_snapshot() {
        let g = LiveGraph::open(
            LiveGraphOptions::in_memory()
                .with_capacity(1 << 22)
                .with_max_vertices(1 << 10),
        )
        .unwrap();
        let mut txn = g.begin_write().unwrap();
        for v in 0..5u64 {
            txn.create_vertex_with_id(v, b"").unwrap();
        }
        txn.put_edge(0, 0, 1, b"").unwrap();
        txn.put_edge(0, 0, 2, b"").unwrap();
        txn.put_edge(3, 0, 4, b"").unwrap();
        txn.commit().unwrap();

        let read = g.begin_read().unwrap();
        let snap = LiveSnapshot::new(&read, 0);
        let csr = snapshot_to_csr(&snap);

        // Writes after the snapshot must not leak into the export.
        let mut later = g.begin_write().unwrap();
        later.put_edge(3, 0, 0, b"").unwrap();
        later.commit().unwrap();

        assert_eq!(csr.num_vertices(), 5);
        assert_eq!(csr.num_edges(), 3);
        let mut n0 = csr.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(csr.neighbors(3), &[4]);
    }
}
