//! Single-source shortest paths with non-negative edge weights (Dijkstra).
//!
//! The LDBC SNB analytics extensions and many of the motivating real-time
//! scenarios (fraud rings over weighted transfer graphs, road networks in
//! traffic maps) need weighted distances rather than the hop counts computed
//! by [`crate::bfs`]. [`GraphSnapshot`] carries topology only, so the caller
//! supplies the edge weight as a closure over `(src, dst)` — for LiveGraph
//! that typically decodes the edge's property payload.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use crate::snapshot::GraphSnapshot;

/// Max-heap entry flipped into a min-heap on distance.
struct HeapEntry {
    dist: f64,
    vertex: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.vertex == other.vertex
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reverse so the BinaryHeap pops the smallest tentative distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(CmpOrdering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// Computes shortest-path distances from `root` to every vertex.
///
/// `weight(src, dst)` must return a non-negative weight for every edge the
/// snapshot yields; negative weights make Dijkstra's greedy settlement
/// invalid and are rejected with a panic in debug builds. Unreachable
/// vertices get `f64::INFINITY`.
pub fn sssp<S, W>(snapshot: &S, root: u64, weight: W) -> Vec<f64>
where
    S: GraphSnapshot + ?Sized,
    W: Fn(u64, u64) -> f64,
{
    let n = snapshot.num_vertices() as usize;
    let mut dist = vec![f64::INFINITY; n];
    if (root as usize) >= n {
        return dist;
    }
    dist[root as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: root,
    });
    while let Some(HeapEntry { dist: d, vertex: v }) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale heap entry
        }
        snapshot.for_each_neighbor_chunk(v, &mut |chunk| {
            for &u in chunk {
                let w = weight(v, u);
                debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
                let candidate = d + w;
                if candidate < dist[u as usize] {
                    dist[u as usize] = candidate;
                    heap.push(HeapEntry {
                        dist: candidate,
                        vertex: u,
                    });
                }
            }
        });
    }
    dist
}

/// Weighted shortest-path distance between one pair of vertices, if any
/// path exists. Early-exits once `dst` is settled.
pub fn weighted_distance<S, W>(snapshot: &S, src: u64, dst: u64, weight: W) -> Option<f64>
where
    S: GraphSnapshot + ?Sized,
    W: Fn(u64, u64) -> f64,
{
    let n = snapshot.num_vertices() as usize;
    if src as usize >= n || dst as usize >= n {
        return None;
    }
    if src == dst {
        return Some(0.0);
    }
    let mut dist = vec![f64::INFINITY; n];
    dist[src as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: src,
    });
    while let Some(HeapEntry { dist: d, vertex: v }) = heap.pop() {
        if v == dst {
            return Some(d);
        }
        if d > dist[v as usize] {
            continue;
        }
        snapshot.for_each_neighbor_chunk(v, &mut |chunk| {
            for &u in chunk {
                let candidate = d + weight(v, u);
                if candidate < dist[u as usize] {
                    dist[u as usize] = candidate;
                    heap.push(HeapEntry {
                        dist: candidate,
                        vertex: u,
                    });
                }
            }
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_baselines::CsrGraph;

    fn unit(_s: u64, _d: u64) -> f64 {
        1.0
    }

    #[test]
    fn unit_weights_match_bfs_levels() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (0, 3)];
        let g = CsrGraph::from_edges(4, &edges);
        let d = sssp(&g, 0, unit);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 1.0]);
        let levels = crate::bfs(&g, 0);
        for (dist, level) in d.iter().zip(&levels) {
            assert_eq!(*dist as i64, *level);
        }
    }

    #[test]
    fn weighted_shortcut_wins_over_fewer_hops() {
        // 0 -> 1 -> 2 costs 2.0; direct 0 -> 2 costs 5.0.
        let edges = vec![(0, 1), (1, 2), (0, 2)];
        let g = CsrGraph::from_edges(3, &edges);
        let w = |s: u64, d: u64| if (s, d) == (0, 2) { 5.0 } else { 1.0 };
        let dist = sssp(&g, 0, w);
        assert_eq!(dist[2], 2.0);
        assert_eq!(weighted_distance(&g, 0, 2, w), Some(2.0));
    }

    #[test]
    fn unreachable_vertices_are_infinite() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let d = sssp(&g, 0, unit);
        assert!(d[2].is_infinite());
        assert!(d[3].is_infinite());
        assert_eq!(weighted_distance(&g, 0, 3, unit), None);
    }

    #[test]
    fn out_of_range_arguments_are_handled() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        assert!(sssp(&g, 9, unit).iter().all(|d| d.is_infinite()));
        assert_eq!(weighted_distance(&g, 0, 9, unit), None);
        assert_eq!(weighted_distance(&g, 1, 1, unit), Some(0.0));
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let d = sssp(&g, 0, |_, _| 0.0);
        assert_eq!(d, vec![0.0, 0.0, 0.0]);
    }
}
