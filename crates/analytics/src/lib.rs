//! Graph analytics over LiveGraph snapshots and CSR graphs.
//!
//! §7.4 of the paper runs PageRank and Connected Components *in situ* on
//! LiveGraph's latest snapshot and compares against Gemini, a dedicated
//! static-graph engine working on CSR — including the ETL cost of exporting
//! the graph into Gemini's format.
//!
//! This crate reproduces that setup:
//!
//! * [`GraphSnapshot`] — the read-only view analytics kernels run against,
//!   implemented both by [`LiveSnapshot`] (a LiveGraph read transaction, so
//!   analytics see a consistent MVCC snapshot while transactions keep
//!   running) and by [`livegraph_baselines::CsrGraph`] (the Gemini stand-in).
//! * [`pagerank`], [`connected_components`], [`bfs`] — the kernels, with a
//!   configurable number of worker threads.
//! * [`etl::snapshot_to_csr`] — the export step whose cost the paper
//!   measures in Table 10.
//!
//! The workspace-level architecture map — TEL block layout, the commit
//! path, and the crate dependency graph — lives in `docs/ARCHITECTURE.md`
//! at the repository root.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bfs;
mod communities;
mod components;
mod etl;
mod khop;
mod pagerank;
mod ppr;
mod snapshot;
mod sssp;
mod stats;
mod triangles;

pub use bfs::{bfs, shortest_path_length};
pub use communities::{communities_by_size, label_propagation, LabelPropagationOptions};
pub use components::connected_components;
pub use etl::snapshot_to_csr;
pub use khop::{k_hop_neighborhood, k_hop_with_distances};
pub use pagerank::{pagerank, PageRankOptions};
pub use ppr::{personalized_pagerank, top_k_recommendations, PersonalizedPageRankOptions};
pub use snapshot::{GraphSnapshot, LiveSnapshot, NEIGHBOR_CHUNK};
pub use sssp::{sssp, weighted_distance};
pub use stats::{degree_histogram, degree_stats, power_law_exponent, DegreeStats};
pub use triangles::{count_triangles, global_clustering_coefficient};

#[cfg(test)]
mod tests {
    use super::*;
    use livegraph_baselines::CsrGraph;
    use livegraph_core::{LiveGraph, LiveGraphOptions};

    /// A small two-triangle graph plus an isolated vertex, used across the
    /// integration-style tests in this crate.
    ///
    /// 0-1-2-0 (triangle), 3-4-5-3 (triangle), 6 isolated, edge 2->3 bridges.
    pub(crate) fn sample_edges() -> Vec<(u64, u64)> {
        vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (2, 3),
        ]
    }

    pub(crate) fn sample_csr() -> CsrGraph {
        CsrGraph::from_edges(7, &sample_edges())
    }

    pub(crate) fn sample_livegraph() -> LiveGraph {
        let g = LiveGraph::open(
            LiveGraphOptions::in_memory()
                .with_capacity(1 << 22)
                .with_max_vertices(1 << 10),
        )
        .unwrap();
        let mut txn = g.begin_write().unwrap();
        for v in 0..7u64 {
            txn.create_vertex_with_id(v, format!("v{v}").as_bytes()).unwrap();
        }
        for (s, d) in sample_edges() {
            txn.put_edge(s, 0, d, b"").unwrap();
        }
        txn.commit().unwrap();
        g
    }

    #[test]
    fn livegraph_and_csr_snapshots_agree_on_topology() {
        let g = sample_livegraph();
        let read = g.begin_read().unwrap();
        let live = LiveSnapshot::new(&read, 0);
        let csr = sample_csr();
        assert_eq!(live.num_vertices(), csr.num_vertices());
        for v in 0..7u64 {
            let mut a = Vec::new();
            let mut b = Vec::new();
            live.for_each_neighbor(v, &mut |d| a.push(d));
            csr.for_each_neighbor(v, &mut |d| b.push(d));
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "neighbors of {v}");
            assert_eq!(live.out_degree(v), csr.out_degree(v));
        }
    }

    #[test]
    fn kernels_produce_identical_results_on_both_snapshots() {
        let g = sample_livegraph();
        let read = g.begin_read().unwrap();
        let live = LiveSnapshot::new(&read, 0);
        let csr = sample_csr();

        let pr_live = pagerank(&live, PageRankOptions::default());
        let pr_csr = pagerank(&csr, PageRankOptions::default());
        for (a, b) in pr_live.iter().zip(&pr_csr) {
            assert!((a - b).abs() < 1e-9, "pagerank must not depend on the storage");
        }

        let cc_live = connected_components(&live, 1);
        let cc_csr = connected_components(&csr, 1);
        assert_eq!(cc_live, cc_csr);

        let bfs_live = bfs(&live, 0);
        let bfs_csr = bfs(&csr, 0);
        assert_eq!(bfs_live, bfs_csr);
    }

    #[test]
    fn extended_kernels_agree_across_snapshot_implementations() {
        let g = sample_livegraph();
        let read = g.begin_read().unwrap();
        let live = LiveSnapshot::new(&read, 0);
        let csr = sample_csr();

        assert_eq!(count_triangles(&live, 2), count_triangles(&csr, 2));
        assert_eq!(
            label_propagation(&live, LabelPropagationOptions::default()),
            label_propagation(&csr, LabelPropagationOptions::default())
        );
        assert_eq!(
            k_hop_with_distances(&live, 0, 3),
            k_hop_with_distances(&csr, 0, 3)
        );
        let ppr_live = personalized_pagerank(&live, &[0], PersonalizedPageRankOptions::default());
        let ppr_csr = personalized_pagerank(&csr, &[0], PersonalizedPageRankOptions::default());
        for (a, b) in ppr_live.iter().zip(&ppr_csr) {
            assert!((a - b).abs() < 1e-9);
        }
        let d_live = sssp(&live, 0, |_, _| 1.0);
        let d_csr = sssp(&csr, 0, |_, _| 1.0);
        assert_eq!(d_live, d_csr);
    }

    #[test]
    fn analytics_run_on_a_fresh_snapshot_while_updates_continue() {
        // The paper's real-time analytics claim: a long-running read
        // transaction keeps a consistent snapshot while writers proceed.
        let g = sample_livegraph();
        let read = g.begin_read().unwrap();
        let live = LiveSnapshot::new(&read, 0);
        let triangles_before = count_triangles(&live, 1);

        // A concurrent writer closes a new triangle 4-6-5.
        let mut w = g.begin_write().unwrap();
        w.put_edge(4, 0, 6, b"").unwrap();
        w.put_edge(6, 0, 5, b"").unwrap();
        w.commit().unwrap();

        // The pinned snapshot is unchanged …
        assert_eq!(count_triangles(&live, 1), triangles_before);
        // … and a fresh snapshot sees the new triangle.
        let read2 = g.begin_read().unwrap();
        let live2 = LiveSnapshot::new(&read2, 0);
        assert_eq!(count_triangles(&live2, 1), triangles_before + 1);
    }
}
