//! Multi-threaded stress tests: atomicity, snapshot stability and liveness
//! under concurrent writers, readers and compaction.
//!
//! These are the workloads where the co-design of the TEL layout and the
//! concurrency control (§5) has to hold up: every reader must observe each
//! transaction either entirely or not at all, long-running readers must keep
//! a frozen view, and compaction running in the background must never change
//! what any snapshot can see.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use livegraph::core::{
    Error, LiveGraph, LiveGraphOptions, ShardedGraph, ShardedGraphOptions,
};

fn graph() -> Arc<LiveGraph> {
    Arc::new(
        LiveGraph::open(
            LiveGraphOptions::in_memory()
                .with_capacity(1 << 26)
                .with_max_vertices(1 << 16)
                .with_compaction_interval(64),
        )
        .unwrap(),
    )
}

/// Every transaction writes the same value to labels 0 and 1 of its hub.
/// Any snapshot must therefore observe equal degrees on both labels —
/// a cheap, always-checkable atomicity invariant.
#[test]
fn readers_never_observe_half_a_transaction() {
    let g = graph();
    let writers = 4usize;
    let txns_per_writer = 200u64;

    let mut setup = g.begin_write().unwrap();
    let hubs: Vec<u64> = (0..writers).map(|i| setup.create_vertex(format!("hub{i}").as_bytes()).unwrap()).collect();
    let targets: Vec<u64> = (0..txns_per_writer)
        .map(|i| setup.create_vertex(format!("t{i}").as_bytes()).unwrap())
        .collect();
    setup.commit().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let violations = Arc::new(AtomicU64::new(0));

    let mut reader_handles = Vec::new();
    for _ in 0..3 {
        let g = Arc::clone(&g);
        let stop = Arc::clone(&stop);
        let violations = Arc::clone(&violations);
        let hubs = hubs.clone();
        reader_handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let read = g.begin_read().unwrap();
                for &hub in &hubs {
                    let d0 = read.degree(hub, 0);
                    let d1 = read.degree(hub, 1);
                    if d0 != d1 {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    let mut writer_handles = Vec::new();
    for (w, &hub) in hubs.iter().enumerate() {
        let g = Arc::clone(&g);
        let targets = targets.clone();
        writer_handles.push(std::thread::spawn(move || {
            for (i, &t) in targets.iter().enumerate() {
                loop {
                    let mut txn = g.begin_write().unwrap();
                    let payload = format!("w{w}-{i}");
                    let r = txn
                        .put_edge(hub, 0, t, payload.as_bytes())
                        .and_then(|_| txn.put_edge(hub, 1, t, payload.as_bytes()));
                    match r {
                        Ok(_) => match txn.commit() {
                            Ok(_) => break,
                            Err(_) => continue,
                        },
                        Err(Error::WriteConflict { .. }) => continue,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }));
    }

    for h in writer_handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in reader_handles {
        h.join().unwrap();
    }
    assert_eq!(violations.load(Ordering::Relaxed), 0, "atomicity violated");

    let read = g.begin_read().unwrap();
    for &hub in &hubs {
        assert_eq!(read.degree(hub, 0) as u64, txns_per_writer);
        assert_eq!(read.degree(hub, 1) as u64, txns_per_writer);
    }
}

/// A long-running reader pinned before any writes must keep seeing the empty
/// adjacency lists while writers and explicit compaction churn the store.
#[test]
fn pinned_snapshot_survives_concurrent_writes_and_compaction() {
    let g = graph();
    let mut setup = g.begin_write().unwrap();
    let hub = setup.create_vertex(b"hub").unwrap();
    let targets: Vec<u64> = (0..512).map(|i| setup.create_vertex(format!("{i}").as_bytes()).unwrap()).collect();
    setup.commit().unwrap();

    let pinned = g.begin_read().unwrap();
    assert_eq!(pinned.degree(hub, 0), 0);

    std::thread::scope(|scope| {
        let g2 = Arc::clone(&g);
        let writer = scope.spawn(move || {
            for (i, &t) in targets.iter().enumerate() {
                let mut txn = g2.begin_write().unwrap();
                txn.put_edge(hub, 0, t, format!("{i}").as_bytes()).unwrap();
                if i % 3 == 0 {
                    txn.put_vertex(hub, format!("hub-{i}").as_bytes()).unwrap();
                }
                txn.commit().unwrap();
            }
        });
        let g3 = Arc::clone(&g);
        let compactor = scope.spawn(move || {
            for _ in 0..50 {
                g3.compact();
                std::thread::yield_now();
            }
        });
        // Interleave snapshot checks with the churn.
        for _ in 0..200 {
            assert_eq!(pinned.degree(hub, 0), 0, "pinned snapshot must stay empty");
            assert_eq!(pinned.get_vertex(hub), Some(&b"hub"[..]));
        }
        writer.join().unwrap();
        compactor.join().unwrap();
    });

    assert_eq!(pinned.degree(hub, 0), 0);
    drop(pinned);
    let fresh = g.begin_read().unwrap();
    assert_eq!(fresh.degree(hub, 0), 512);
}

/// Concurrent deletions and insertions on disjoint vertices, with background
/// compaction recycling ids: the final state must account for every vertex
/// exactly once.
#[test]
fn concurrent_deletes_inserts_and_compaction_do_not_corrupt_state() {
    let g = graph();
    let per_thread = 64u64;
    let threads = 4u64;

    let mut setup = g.begin_write().unwrap();
    let target = setup.create_vertex(b"target").unwrap();
    let mut victims = Vec::new();
    for i in 0..threads * per_thread {
        victims.push(setup.create_vertex(format!("v{i}").as_bytes()).unwrap());
    }
    setup.commit().unwrap();

    std::thread::scope(|scope| {
        for t in 0..threads {
            let g = Arc::clone(&g);
            let chunk: Vec<u64> = victims
                [(t * per_thread) as usize..((t + 1) * per_thread) as usize]
                .to_vec();
            scope.spawn(move || {
                for &v in &chunk {
                    // Give each victim an edge, then delete every other one.
                    let mut txn = g.begin_write().unwrap();
                    txn.put_edge(v, 0, target, b"e").unwrap();
                    txn.commit().unwrap();
                    if v % 2 == 0 {
                        let mut del = g.begin_write().unwrap();
                        del.delete_vertex(v).unwrap();
                        del.commit().unwrap();
                    }
                }
            });
        }
        let g = Arc::clone(&g);
        scope.spawn(move || {
            for _ in 0..30 {
                g.compact();
                std::thread::yield_now();
            }
        });
    });

    g.compact();
    let read = g.begin_read().unwrap();
    let mut alive = 0u64;
    for &v in &victims {
        match read.get_vertex(v) {
            Some(_) => {
                alive += 1;
                assert_eq!(read.degree(v, 0), 1, "surviving vertex keeps its edge");
            }
            None => {
                assert_eq!(read.degree(v, 0), 0, "deleted vertex must have no edges");
            }
        }
    }
    assert_eq!(alive, threads * per_thread / 2);
}

/// Regression test for deadlock-free multi-vertex locking: two writers
/// declare the same vertex pair in *opposite* orders, over and over. With
/// lazy op-order locking this is the classic ABBA deadlock, resolved only
/// by the `lock_with_timeout` abort path; `lock_vertices` acquires in
/// global vertex order instead, so a wait cycle can never form and no
/// transaction should ever hit the lock timeout.
#[test]
fn opposite_order_lock_declarations_never_deadlock() {
    let g = graph();
    let mut setup = g.begin_write().unwrap();
    let a = setup.create_vertex(b"a").unwrap();
    let b = setup.create_vertex(b"b").unwrap();
    setup.commit().unwrap();

    let conflicts = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for (writer, order) in [(0u64, [a, b]), (1u64, [b, a])] {
            let g = Arc::clone(&g);
            let conflicts = Arc::clone(&conflicts);
            scope.spawn(move || {
                // Each writer updates only its own vertex but locks both, in
                // its own declaration order: lock sets always collide, write
                // sets never do, so every abort would be a locking failure.
                let own = order[0];
                for i in 0..300u64 {
                    let mut txn = g.begin_write().unwrap();
                    match txn
                        .lock_vertices(&order)
                        .and_then(|()| txn.put_vertex(own, format!("w{writer}-{i}").as_bytes()))
                        .and_then(|()| txn.commit())
                    {
                        Ok(_) => {}
                        Err(Error::WriteConflict { .. }) => {
                            conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });
    assert_eq!(
        conflicts.load(Ordering::Relaxed),
        0,
        "ordered lock acquisition must not time out or conflict"
    );
}

/// The same ABBA regression across shards: the sharded engine orders lock
/// acquisition by global `(shard, vertex)` rank, so opposite-order
/// declarations spanning two shards are deadlock-free too.
#[test]
fn opposite_order_cross_shard_lock_declarations_never_deadlock() {
    let g = Arc::new(
        ShardedGraph::open(
            ShardedGraphOptions::in_memory(2).with_base(
                LiveGraphOptions::in_memory()
                    .with_capacity(1 << 24)
                    .with_max_vertices(1 << 14),
            ),
        )
        .unwrap(),
    );
    let mut setup = g.begin_write().unwrap();
    let a = setup.create_vertex(b"a").unwrap(); // shard 0
    let b = setup.create_vertex(b"b").unwrap(); // shard 1
    setup.commit().unwrap();

    let conflicts = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for (writer, order) in [(0u64, [a, b]), (1u64, [b, a])] {
            let g = Arc::clone(&g);
            let conflicts = Arc::clone(&conflicts);
            scope.spawn(move || {
                let own = order[0];
                for i in 0..300u64 {
                    let mut txn = g.begin_write().unwrap();
                    match txn
                        .lock_vertices(&order)
                        .and_then(|()| txn.put_vertex(own, format!("w{writer}-{i}").as_bytes()))
                        .and_then(|()| txn.commit())
                    {
                        Ok(_) => {}
                        Err(Error::WriteConflict { .. }) => {
                            conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });
    assert_eq!(
        conflicts.load(Ordering::Relaxed),
        0,
        "cross-shard ordered lock acquisition must not time out or conflict"
    );

    let read = g.begin_read().unwrap();
    assert!(read.get_vertex(a).unwrap().starts_with(b"w0-"));
    assert!(read.get_vertex(b).unwrap().starts_with(b"w1-"));
}

/// Write skew on disjoint vertices is allowed under snapshot isolation, but
/// lost updates on the *same* vertex are not: with first-updater-wins, every
/// successful increment must be reflected in the final payload.
#[test]
fn no_lost_updates_on_a_single_vertex_counter() {
    let g = graph();
    let mut setup = g.begin_write().unwrap();
    let counter = setup.create_vertex(&0u64.to_le_bytes()).unwrap();
    setup.commit().unwrap();

    let successes = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let g = Arc::clone(&g);
            let successes = Arc::clone(&successes);
            scope.spawn(move || {
                for _ in 0..50 {
                    loop {
                        let mut txn = g.begin_write().unwrap();
                        let current = match txn.get_vertex(counter) {
                            Some(bytes) => u64::from_le_bytes(bytes.try_into().unwrap()),
                            None => panic!("counter vanished"),
                        };
                        match txn
                            .put_vertex(counter, &(current + 1).to_le_bytes())
                            .and_then(|_| txn.commit())
                        {
                            Ok(_) => {
                                successes.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(Error::WriteConflict { .. }) => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            });
        }
    });

    let read = g.begin_read().unwrap();
    let value = u64::from_le_bytes(read.get_vertex(counter).unwrap().try_into().unwrap());
    assert_eq!(value, successes.load(Ordering::Relaxed), "increments lost or duplicated");
    assert_eq!(value, 200);
}
