//! Failure-injection tests for durability and recovery.
//!
//! The WAL's job (§5 persist phase, §6 recovery) is to guarantee that after
//! a crash the recovered graph is exactly the state after some *prefix* of
//! the committed transactions — never a partial transaction, never a suffix
//! without its prefix. These tests simulate crashes by truncating and
//! corrupting the on-disk log at arbitrary byte positions and re-opening the
//! graph from the damaged directory.

use std::collections::BTreeSet;
use std::path::Path;

use livegraph::core::{LiveGraph, LiveGraphOptions, SyncMode};

const LABEL: u16 = 0;

fn durable_options(dir: &Path) -> LiveGraphOptions {
    LiveGraphOptions::durable(dir)
        .with_capacity(1 << 24)
        .with_max_vertices(1 << 12)
        .with_sync_mode(SyncMode::NoSync)
}

/// The canonical edge set of the graph, as `(src, dst, payload)` triples.
fn edge_set(graph: &LiveGraph) -> BTreeSet<(u64, u64, Vec<u8>)> {
    let read = graph.begin_read().unwrap();
    let mut out = BTreeSet::new();
    for (v, _) in read.vertices() {
        for e in read.edges(v, LABEL) {
            out.insert((v, e.dst, e.properties.to_vec()));
        }
    }
    out
}

/// Runs `txns` committed transactions, each linking a fresh pair of vertices,
/// and records the cumulative edge set after every commit.
fn run_workload(dir: &Path, txns: usize) -> Vec<BTreeSet<(u64, u64, Vec<u8>)>> {
    let graph = LiveGraph::open(durable_options(dir)).unwrap();
    let mut states = Vec::with_capacity(txns + 1);
    states.push(edge_set(&graph));
    for i in 0..txns {
        let mut txn = graph.begin_write().unwrap();
        let a = txn.create_vertex(format!("a{i}").as_bytes()).unwrap();
        let b = txn.create_vertex(format!("b{i}").as_bytes()).unwrap();
        txn.put_edge(a, LABEL, b, format!("edge{i}").as_bytes()).unwrap();
        // A second edge in the same transaction checks atomicity of replay.
        txn.put_edge(b, LABEL, a, format!("back{i}").as_bytes()).unwrap();
        txn.commit().unwrap();
        states.push(edge_set(&graph));
    }
    states
}

#[test]
fn recovery_after_clean_shutdown_restores_everything() {
    let dir = tempfile::tempdir().unwrap();
    let states = run_workload(dir.path(), 20);
    let graph = LiveGraph::open(durable_options(dir.path())).unwrap();
    assert_eq!(edge_set(&graph), *states.last().unwrap());
}

#[test]
fn truncated_wal_recovers_to_a_transaction_prefix() {
    let dir = tempfile::tempdir().unwrap();
    let states = run_workload(dir.path(), 30);
    let wal_bytes = std::fs::read(dir.path().join("wal.log")).unwrap();
    assert!(!wal_bytes.is_empty());

    // Cut the log at a spread of positions, including mid-record.
    let cuts = [
        0,
        1,
        wal_bytes.len() / 7,
        wal_bytes.len() / 3,
        wal_bytes.len() / 2,
        wal_bytes.len() * 2 / 3,
        wal_bytes.len() - 5,
        wal_bytes.len() - 1,
        wal_bytes.len(),
    ];
    for &cut in &cuts {
        let crash_dir = tempfile::tempdir().unwrap();
        std::fs::write(crash_dir.path().join("wal.log"), &wal_bytes[..cut]).unwrap();
        let recovered = LiveGraph::open(durable_options(crash_dir.path())).unwrap();
        let got = edge_set(&recovered);
        assert!(
            states.contains(&got),
            "cut at {cut} bytes recovered a state that is not a committed prefix \
             ({} edges)",
            got.len()
        );
        // Atomicity: both edges of a transaction appear together or not at all.
        assert_eq!(got.len() % 2, 0, "cut at {cut} split a transaction in half");
        // The recovered graph must accept new transactions.
        let mut txn = recovered.begin_write().unwrap();
        let x = txn.create_vertex(b"post-crash").unwrap();
        let y = txn.create_vertex(b"post-crash-2").unwrap();
        txn.put_edge(x, LABEL, y, b"new").unwrap();
        txn.commit().unwrap();
    }
}

#[test]
fn corrupted_wal_record_stops_replay_at_the_corruption() {
    let dir = tempfile::tempdir().unwrap();
    let states = run_workload(dir.path(), 15);
    let mut wal_bytes = std::fs::read(dir.path().join("wal.log")).unwrap();
    // Flip a byte roughly two thirds in.
    let idx = wal_bytes.len() * 2 / 3;
    wal_bytes[idx] ^= 0x5A;

    let crash_dir = tempfile::tempdir().unwrap();
    std::fs::write(crash_dir.path().join("wal.log"), &wal_bytes).unwrap();
    let recovered = LiveGraph::open(durable_options(crash_dir.path())).unwrap();
    let got = edge_set(&recovered);
    assert!(
        states.contains(&got),
        "corruption must truncate replay to a committed prefix"
    );
    assert!(
        got.len() < states.last().unwrap().len(),
        "corruption before the tail must lose at least the tail transactions"
    );
}

#[test]
fn checkpoint_plus_truncated_wal_preserves_the_checkpointed_prefix() {
    let dir = tempfile::tempdir().unwrap();
    let checkpoint_state;
    {
        let graph = LiveGraph::open(durable_options(dir.path())).unwrap();
        for i in 0..10 {
            let mut txn = graph.begin_write().unwrap();
            let a = txn.create_vertex(format!("pre{i}").as_bytes()).unwrap();
            let b = txn.create_vertex(b"t").unwrap();
            txn.put_edge(a, LABEL, b, b"pre").unwrap();
            txn.commit().unwrap();
        }
        graph.checkpoint().unwrap();
        checkpoint_state = edge_set(&graph);
        for i in 0..10 {
            let mut txn = graph.begin_write().unwrap();
            let a = txn.create_vertex(format!("post{i}").as_bytes()).unwrap();
            let b = txn.create_vertex(b"t").unwrap();
            txn.put_edge(a, LABEL, b, b"post").unwrap();
            txn.commit().unwrap();
        }
    }
    // Crash that destroys the entire post-checkpoint WAL.
    std::fs::write(dir.path().join("wal.log"), b"").unwrap();
    let recovered = LiveGraph::open(durable_options(dir.path())).unwrap();
    assert_eq!(
        edge_set(&recovered),
        checkpoint_state,
        "the checkpointed prefix must survive losing the WAL"
    );
}

#[test]
fn vertex_deletions_survive_recovery() {
    let dir = tempfile::tempdir().unwrap();
    let (alive, deleted);
    {
        let graph = LiveGraph::open(durable_options(dir.path())).unwrap();
        let mut txn = graph.begin_write().unwrap();
        alive = txn.create_vertex(b"alive").unwrap();
        deleted = txn.create_vertex(b"doomed").unwrap();
        txn.put_edge(deleted, LABEL, alive, b"out-edge").unwrap();
        txn.put_edge(alive, LABEL, deleted, b"in-edge").unwrap();
        txn.commit().unwrap();
        let mut del = graph.begin_write().unwrap();
        del.delete_vertex(deleted).unwrap();
        del.commit().unwrap();
    }
    let recovered = LiveGraph::open(durable_options(dir.path())).unwrap();
    let read = recovered.begin_read().unwrap();
    assert_eq!(read.get_vertex(alive), Some(&b"alive"[..]));
    assert_eq!(read.get_vertex(deleted), None, "deletion must be replayed");
    assert_eq!(read.degree(deleted, LABEL), 0, "out-edges stay invalidated");
    assert_eq!(
        read.degree(alive, LABEL),
        1,
        "in-edges of the deleted vertex are untouched (out-adjacency only)"
    );
}

#[test]
fn checkpoint_after_deletions_does_not_resurrect_vertices() {
    let dir = tempfile::tempdir().unwrap();
    let (kept, dropped);
    {
        let graph = LiveGraph::open(durable_options(dir.path())).unwrap();
        let mut txn = graph.begin_write().unwrap();
        kept = txn.create_vertex(b"kept").unwrap();
        dropped = txn.create_vertex(b"dropped").unwrap();
        txn.put_edge(kept, LABEL, dropped, b"e").unwrap();
        txn.commit().unwrap();
        let mut del = graph.begin_write().unwrap();
        del.delete_vertex(dropped).unwrap();
        del.commit().unwrap();
        // The checkpoint becomes the only durable artefact.
        graph.checkpoint().unwrap();
        std::fs::write(dir.path().join("wal.log"), b"").unwrap();
    }
    let recovered = LiveGraph::open(durable_options(dir.path())).unwrap();
    let read = recovered.begin_read().unwrap();
    assert_eq!(read.get_vertex(kept), Some(&b"kept"[..]));
    assert_eq!(read.get_vertex(dropped), None);
    assert_eq!(
        recovered.vertex_count(),
        2,
        "the id space must be preserved even for deleted trailing ids"
    );
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    // Recover, append, "crash" (drop without checkpoint), recover again —
    // five times. Nothing may be lost or duplicated.
    let dir = tempfile::tempdir().unwrap();
    let mut expected = 0usize;
    for round in 0..5 {
        let graph = LiveGraph::open(durable_options(dir.path())).unwrap();
        assert_eq!(edge_set(&graph).len(), expected, "round {round} lost data");
        let mut txn = graph.begin_write().unwrap();
        let a = txn.create_vertex(format!("r{round}").as_bytes()).unwrap();
        let b = txn.create_vertex(b"t").unwrap();
        txn.put_edge(a, LABEL, b, b"x").unwrap();
        txn.commit().unwrap();
        expected += 1;
        // graph dropped here without a clean checkpoint
    }
    let final_graph = LiveGraph::open(durable_options(dir.path())).unwrap();
    assert_eq!(edge_set(&final_graph).len(), expected);
}
