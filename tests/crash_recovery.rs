//! Failure-injection tests for durability and recovery.
//!
//! The WAL's job (§5 persist phase, §6 recovery) is to guarantee that after
//! a crash the recovered graph is exactly the state after some *prefix* of
//! the committed transactions — never a partial transaction, never a suffix
//! without its prefix. These tests simulate crashes by truncating and
//! corrupting the on-disk log at arbitrary byte positions and re-opening the
//! graph from the damaged directory.

use std::collections::BTreeSet;
use std::path::Path;

use livegraph::core::{
    GroupCommitConfig, LiveGraph, LiveGraphOptions, ShardedGraph, ShardedGraphOptions, SyncMode,
};

const LABEL: u16 = 0;

fn durable_options(dir: &Path) -> LiveGraphOptions {
    LiveGraphOptions::durable(dir)
        .with_capacity(1 << 24)
        .with_max_vertices(1 << 12)
        .with_sync_mode(SyncMode::NoSync)
}

/// The canonical edge set of the graph, as `(src, dst, payload)` triples.
fn edge_set(graph: &LiveGraph) -> BTreeSet<(u64, u64, Vec<u8>)> {
    let read = graph.begin_read().unwrap();
    let mut out = BTreeSet::new();
    for (v, _) in read.vertices() {
        for e in read.edges(v, LABEL) {
            out.insert((v, e.dst, e.properties.to_vec()));
        }
    }
    out
}

/// Runs `txns` committed transactions, each linking a fresh pair of vertices,
/// and records the cumulative edge set after every commit.
fn run_workload(dir: &Path, txns: usize) -> Vec<BTreeSet<(u64, u64, Vec<u8>)>> {
    let graph = LiveGraph::open(durable_options(dir)).unwrap();
    let mut states = Vec::with_capacity(txns + 1);
    states.push(edge_set(&graph));
    for i in 0..txns {
        let mut txn = graph.begin_write().unwrap();
        let a = txn.create_vertex(format!("a{i}").as_bytes()).unwrap();
        let b = txn.create_vertex(format!("b{i}").as_bytes()).unwrap();
        txn.put_edge(a, LABEL, b, format!("edge{i}").as_bytes()).unwrap();
        // A second edge in the same transaction checks atomicity of replay.
        txn.put_edge(b, LABEL, a, format!("back{i}").as_bytes()).unwrap();
        txn.commit().unwrap();
        states.push(edge_set(&graph));
    }
    states
}

#[test]
fn recovery_after_clean_shutdown_restores_everything() {
    let dir = tempfile::tempdir().unwrap();
    let states = run_workload(dir.path(), 20);
    let graph = LiveGraph::open(durable_options(dir.path())).unwrap();
    assert_eq!(edge_set(&graph), *states.last().unwrap());
}

#[test]
fn truncated_wal_recovers_to_a_transaction_prefix() {
    let dir = tempfile::tempdir().unwrap();
    let states = run_workload(dir.path(), 30);
    let wal_bytes = std::fs::read(dir.path().join("wal.log")).unwrap();
    assert!(!wal_bytes.is_empty());

    // Cut the log at a spread of positions, including mid-record.
    let cuts = [
        0,
        1,
        wal_bytes.len() / 7,
        wal_bytes.len() / 3,
        wal_bytes.len() / 2,
        wal_bytes.len() * 2 / 3,
        wal_bytes.len() - 5,
        wal_bytes.len() - 1,
        wal_bytes.len(),
    ];
    for &cut in &cuts {
        let crash_dir = tempfile::tempdir().unwrap();
        std::fs::write(crash_dir.path().join("wal.log"), &wal_bytes[..cut]).unwrap();
        let recovered = LiveGraph::open(durable_options(crash_dir.path())).unwrap();
        let got = edge_set(&recovered);
        assert!(
            states.contains(&got),
            "cut at {cut} bytes recovered a state that is not a committed prefix \
             ({} edges)",
            got.len()
        );
        // Atomicity: both edges of a transaction appear together or not at all.
        assert_eq!(got.len() % 2, 0, "cut at {cut} split a transaction in half");
        // The recovered graph must accept new transactions.
        let mut txn = recovered.begin_write().unwrap();
        let x = txn.create_vertex(b"post-crash").unwrap();
        let y = txn.create_vertex(b"post-crash-2").unwrap();
        txn.put_edge(x, LABEL, y, b"new").unwrap();
        txn.commit().unwrap();
    }
}

#[test]
fn corrupted_wal_record_stops_replay_at_the_corruption() {
    let dir = tempfile::tempdir().unwrap();
    let states = run_workload(dir.path(), 15);
    let mut wal_bytes = std::fs::read(dir.path().join("wal.log")).unwrap();
    // Flip a byte roughly two thirds in.
    let idx = wal_bytes.len() * 2 / 3;
    wal_bytes[idx] ^= 0x5A;

    let crash_dir = tempfile::tempdir().unwrap();
    std::fs::write(crash_dir.path().join("wal.log"), &wal_bytes).unwrap();
    let recovered = LiveGraph::open(durable_options(crash_dir.path())).unwrap();
    let got = edge_set(&recovered);
    assert!(
        states.contains(&got),
        "corruption must truncate replay to a committed prefix"
    );
    assert!(
        got.len() < states.last().unwrap().len(),
        "corruption before the tail must lose at least the tail transactions"
    );
}

#[test]
fn checkpoint_plus_truncated_wal_preserves_the_checkpointed_prefix() {
    let dir = tempfile::tempdir().unwrap();
    let checkpoint_state;
    {
        let graph = LiveGraph::open(durable_options(dir.path())).unwrap();
        for i in 0..10 {
            let mut txn = graph.begin_write().unwrap();
            let a = txn.create_vertex(format!("pre{i}").as_bytes()).unwrap();
            let b = txn.create_vertex(b"t").unwrap();
            txn.put_edge(a, LABEL, b, b"pre").unwrap();
            txn.commit().unwrap();
        }
        graph.checkpoint().unwrap();
        checkpoint_state = edge_set(&graph);
        for i in 0..10 {
            let mut txn = graph.begin_write().unwrap();
            let a = txn.create_vertex(format!("post{i}").as_bytes()).unwrap();
            let b = txn.create_vertex(b"t").unwrap();
            txn.put_edge(a, LABEL, b, b"post").unwrap();
            txn.commit().unwrap();
        }
    }
    // Crash that destroys the entire post-checkpoint WAL.
    std::fs::write(dir.path().join("wal.log"), b"").unwrap();
    let recovered = LiveGraph::open(durable_options(dir.path())).unwrap();
    assert_eq!(
        edge_set(&recovered),
        checkpoint_state,
        "the checkpointed prefix must survive losing the WAL"
    );
}

#[test]
fn vertex_deletions_survive_recovery() {
    let dir = tempfile::tempdir().unwrap();
    let (alive, deleted);
    {
        let graph = LiveGraph::open(durable_options(dir.path())).unwrap();
        let mut txn = graph.begin_write().unwrap();
        alive = txn.create_vertex(b"alive").unwrap();
        deleted = txn.create_vertex(b"doomed").unwrap();
        txn.put_edge(deleted, LABEL, alive, b"out-edge").unwrap();
        txn.put_edge(alive, LABEL, deleted, b"in-edge").unwrap();
        txn.commit().unwrap();
        let mut del = graph.begin_write().unwrap();
        del.delete_vertex(deleted).unwrap();
        del.commit().unwrap();
    }
    let recovered = LiveGraph::open(durable_options(dir.path())).unwrap();
    let read = recovered.begin_read().unwrap();
    assert_eq!(read.get_vertex(alive), Some(&b"alive"[..]));
    assert_eq!(read.get_vertex(deleted), None, "deletion must be replayed");
    assert_eq!(read.degree(deleted, LABEL), 0, "out-edges stay invalidated");
    assert_eq!(
        read.degree(alive, LABEL),
        1,
        "in-edges of the deleted vertex are untouched (out-adjacency only)"
    );
}

#[test]
fn checkpoint_after_deletions_does_not_resurrect_vertices() {
    let dir = tempfile::tempdir().unwrap();
    let (kept, dropped);
    {
        let graph = LiveGraph::open(durable_options(dir.path())).unwrap();
        let mut txn = graph.begin_write().unwrap();
        kept = txn.create_vertex(b"kept").unwrap();
        dropped = txn.create_vertex(b"dropped").unwrap();
        txn.put_edge(kept, LABEL, dropped, b"e").unwrap();
        txn.commit().unwrap();
        let mut del = graph.begin_write().unwrap();
        del.delete_vertex(dropped).unwrap();
        del.commit().unwrap();
        // The checkpoint becomes the only durable artefact.
        graph.checkpoint().unwrap();
        std::fs::write(dir.path().join("wal.log"), b"").unwrap();
    }
    let recovered = LiveGraph::open(durable_options(dir.path())).unwrap();
    let read = recovered.begin_read().unwrap();
    assert_eq!(read.get_vertex(kept), Some(&b"kept"[..]));
    assert_eq!(read.get_vertex(dropped), None);
    assert_eq!(
        recovered.vertex_count(),
        2,
        "the id space must be preserved even for deleted trailing ids"
    );
}

// ---------------------------------------------------------------------------
// Sharded engine: multi-WAL recovery to a consistent atomic cut
// ---------------------------------------------------------------------------

fn sharded_options(dir: &Path, shards: usize) -> ShardedGraphOptions {
    ShardedGraphOptions::durable(shards, dir).with_base(
        LiveGraphOptions::durable(dir)
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 12)
            .with_sync_mode(SyncMode::NoSync),
    )
}

/// The canonical edge set of a sharded graph.
fn sharded_edge_set(graph: &ShardedGraph) -> BTreeSet<(u64, u64, Vec<u8>)> {
    let read = graph.begin_read().unwrap();
    let mut out = BTreeSet::new();
    for (v, _) in read.vertices() {
        for e in read.edges(v, LABEL) {
            out.insert((v, e.dst, e.properties.to_vec()));
        }
    }
    out
}

/// Runs `txns` cross-shard transactions on a 2-shard graph. Transaction `i`
/// creates vertex pair `(aᵢ on shard 0, bᵢ on shard 1)` and links them in
/// both directions, so every transaction spans both shards and its two
/// edges must live or die together.
fn run_sharded_workload(dir: &Path, txns: usize) -> BTreeSet<(u64, u64, Vec<u8>)> {
    let graph = ShardedGraph::open(sharded_options(dir, 2)).unwrap();
    for i in 0..txns {
        let mut txn = graph.begin_write().unwrap();
        let a = txn.create_vertex(format!("a{i}").as_bytes()).unwrap();
        let b = txn.create_vertex(format!("b{i}").as_bytes()).unwrap();
        assert_eq!(graph.shard_of(a), 0);
        assert_eq!(graph.shard_of(b), 1);
        txn.put_edge(a, LABEL, b, format!("fwd{i}").as_bytes()).unwrap();
        txn.put_edge(b, LABEL, a, format!("rev{i}").as_bytes()).unwrap();
        txn.commit().unwrap();
    }
    sharded_edge_set(&graph)
}

/// Asserts the atomic-cut property: both directed edges of every workload
/// transaction are present together or absent together.
fn assert_atomic_cut(edges: &BTreeSet<(u64, u64, Vec<u8>)>) {
    let pairs: BTreeSet<(u64, u64)> = edges.iter().map(|(s, d, _)| (*s, *d)).collect();
    for &(src, dst) in &pairs {
        assert!(
            pairs.contains(&(dst, src)),
            "transaction torn across shards: ({src} → {dst}) recovered without its \
             reverse edge"
        );
    }
}

#[test]
fn torn_cross_shard_wal_tail_recovers_to_an_atomic_cut() {
    let dir = tempfile::tempdir().unwrap();
    let committed = run_sharded_workload(dir.path(), 20);
    assert_eq!(committed.len(), 40);
    let wal0 = std::fs::read(dir.path().join("shard-0/wal.log")).unwrap();
    let wal1 = std::fs::read(dir.path().join("shard-1/wal.log")).unwrap();
    assert!(!wal0.is_empty() && !wal1.is_empty());

    // Truncate ONE shard's WAL at a spread of positions, including
    // mid-record (a torn write during the cross-shard handshake). Because
    // the handshake replicates the full record to every participant's WAL,
    // any transaction torn out of shard 1's log must still be recovered
    // entirely from shard 0's copy — the recovered state equals the full
    // committed state.
    for &(torn_shard, intact) in &[(1usize, &wal0), (0usize, &wal1)] {
        let torn = if torn_shard == 1 { &wal1 } else { &wal0 };
        let cuts = [0, 1, torn.len() / 3, torn.len() / 2, torn.len() - 7, torn.len() - 1];
        for &cut in &cuts {
            let crash = tempfile::tempdir().unwrap();
            std::fs::create_dir_all(crash.path().join("shard-0")).unwrap();
            std::fs::create_dir_all(crash.path().join("shard-1")).unwrap();
            let (intact_shard, torn_name) = (1 - torn_shard, format!("shard-{torn_shard}"));
            std::fs::write(
                crash.path().join(format!("shard-{intact_shard}/wal.log")),
                intact,
            )
            .unwrap();
            std::fs::write(crash.path().join(torn_name).join("wal.log"), &torn[..cut]).unwrap();

            let recovered = ShardedGraph::open(sharded_options(crash.path(), 2)).unwrap();
            let got = sharded_edge_set(&recovered);
            assert_atomic_cut(&got);
            assert_eq!(
                got, committed,
                "shard {torn_shard} cut at {cut}: replicated records must recover \
                 every committed cross-shard transaction"
            );
        }
    }
}

#[test]
fn torn_tails_on_every_shard_recover_to_an_atomic_prefix() {
    let dir = tempfile::tempdir().unwrap();
    let committed = run_sharded_workload(dir.path(), 20);
    let wal0 = std::fs::read(dir.path().join("shard-0/wal.log")).unwrap();
    let wal1 = std::fs::read(dir.path().join("shard-1/wal.log")).unwrap();

    // Both WALs damaged at (different) arbitrary points: some tail of the
    // history is lost, but whatever survives must still be transaction-
    // atomic across shards, a subset of the committed state, and the
    // recovered graph must accept new cross-shard transactions.
    for (c0, c1) in [
        (wal0.len() / 2, wal1.len() / 3),
        (wal0.len() / 4, wal1.len() - 5),
        (wal0.len() - 9, wal1.len() / 2),
        (0, wal1.len() / 2),
    ] {
        let crash = tempfile::tempdir().unwrap();
        std::fs::create_dir_all(crash.path().join("shard-0")).unwrap();
        std::fs::create_dir_all(crash.path().join("shard-1")).unwrap();
        std::fs::write(crash.path().join("shard-0/wal.log"), &wal0[..c0]).unwrap();
        std::fs::write(crash.path().join("shard-1/wal.log"), &wal1[..c1]).unwrap();

        let recovered = ShardedGraph::open(sharded_options(crash.path(), 2)).unwrap();
        let got = sharded_edge_set(&recovered);
        assert_atomic_cut(&got);
        assert!(
            got.is_subset(&committed),
            "cut ({c0}, {c1}) resurrected edges that were never committed"
        );
        // The recovered graph is writable and stays atomic.
        let mut txn = recovered.begin_write().unwrap();
        let x = txn.create_vertex(b"post-crash-a").unwrap();
        let y = txn.create_vertex(b"post-crash-b").unwrap();
        txn.put_edge(x, LABEL, y, b"fwd").unwrap();
        txn.put_edge(y, LABEL, x, b"rev").unwrap();
        txn.commit().unwrap();
        let after = sharded_edge_set(&recovered);
        assert!(after.contains(&(x, y, b"fwd".to_vec())));
        assert!(after.contains(&(y, x, b"rev".to_vec())));
    }
}

#[test]
fn mixed_single_and_cross_shard_history_recovers_each_txn_atomically() {
    let dir = tempfile::tempdir().unwrap();
    let committed;
    {
        let graph = ShardedGraph::open(sharded_options(dir.path(), 2)).unwrap();
        let mut setup = graph.begin_write().unwrap();
        let ids: Vec<u64> = (0..24)
            .map(|i| setup.create_vertex(format!("v{i}").as_bytes()).unwrap())
            .collect();
        setup.commit().unwrap();
        for i in 0..12 {
            let a = ids[2 * i]; // even id → shard 0
            let b = ids[2 * i + 1]; // odd id → shard 1
            let mut txn = graph.begin_write().unwrap();
            if i % 3 == 0 {
                // Genuinely single-shard transaction: a self-edge on shard 0
                // takes that shard's ordinary group-commit path.
                txn.put_edge(a, LABEL, a, format!("self{i}").as_bytes()).unwrap();
            } else {
                txn.put_edge(a, LABEL, b, format!("fwd{i}").as_bytes()).unwrap();
                txn.put_edge(b, LABEL, a, format!("rev{i}").as_bytes()).unwrap();
            }
            txn.commit().unwrap();
        }
        committed = sharded_edge_set(&graph);
    }
    let wal1 = std::fs::read(dir.path().join("shard-1/wal.log")).unwrap();
    // Tear shard 1's tail: trailing single-shard txns of shard 1 may be
    // lost, but every recovered transaction is complete.
    std::fs::write(dir.path().join("shard-1/wal.log"), &wal1[..wal1.len() / 2]).unwrap();
    let recovered = ShardedGraph::open(sharded_options(dir.path(), 2)).unwrap();
    let got = sharded_edge_set(&recovered);
    assert_atomic_cut(&got);
    assert!(got.is_subset(&committed));
}

/// Runs concurrent cross-shard transactions with group commit forced into
/// multi-record batches (simulated flush latency + a linger window), so
/// each shard's WAL interleaves records of *many* transactions inside each
/// flushed group. Returns the committed edge set.
fn run_batched_cross_shard_workload(
    graph: &ShardedGraph,
    threads: usize,
    txns_per_thread: usize,
) -> BTreeSet<(u64, u64, Vec<u8>)> {
    // Pre-create one (shard-0, shard-1) vertex pair per transaction in a
    // single cross-shard setup transaction, so the workload's edge puts can
    // run concurrently without write-write conflicts on the vertices.
    let ids: Vec<u64> = {
        let mut setup = graph.begin_write().unwrap();
        let ids = (0..2 * threads * txns_per_thread)
            .map(|i| setup.create_vertex(format!("v{i:04}").as_bytes()).unwrap())
            .collect();
        setup.commit().unwrap();
        ids
    };
    std::thread::scope(|scope| {
        for w in 0..threads {
            let ids = &ids;
            scope.spawn(move || {
                for s in 0..txns_per_thread {
                    let pair = w * txns_per_thread + s;
                    let (a, b) = (ids[2 * pair], ids[2 * pair + 1]);
                    assert_eq!(graph.shard_of(a), 0);
                    assert_eq!(graph.shard_of(b), 1);
                    let mut txn = graph.begin_write().unwrap();
                    txn.put_edge(a, LABEL, b, format!("fwd{pair:04}").as_bytes()).unwrap();
                    txn.put_edge(b, LABEL, a, format!("rev{pair:04}").as_bytes()).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    sharded_edge_set(graph)
}

#[test]
fn torn_batched_group_on_one_shard_recovers_every_cross_shard_txn() {
    // Group commit batches the *replication* writes of concurrent
    // cross-shard transactions: each participant's WAL fsyncs once per
    // batch of transactions. Tearing one shard's log inside such a batch
    // loses the batch's tail records there — but every record is replicated
    // to both participants, so recovery must still deliver each transaction
    // all-or-nothing, and here (with the other WAL intact) in full.
    let dir = tempfile::tempdir().unwrap();
    let batched = GroupCommitConfig::default()
        .with_max_batch(8)
        .with_max_wait(std::time::Duration::from_micros(500));
    let opts = |d: &Path| {
        ShardedGraphOptions::durable(2, d).with_base(
            LiveGraphOptions::durable(d)
                .with_capacity(1 << 24)
                .with_max_vertices(1 << 12)
                .with_sync_mode(SyncMode::Simulated(std::time::Duration::from_micros(200)))
                .with_group_commit(batched),
        )
    };
    let committed = {
        let graph = ShardedGraph::open(opts(dir.path())).unwrap();
        let committed = run_batched_cross_shard_workload(&graph, 4, 12);
        let stats = graph.stats();
        assert!(
            stats.wal_group_records() > stats.wal_groups(),
            "workload produced no multi-record batches ({} records in {} groups): \
             the torn-batch scenario was not exercised",
            stats.wal_group_records(),
            stats.wal_groups()
        );
        committed
    };
    assert_eq!(committed.len(), 2 * 4 * 12);
    let wal0 = std::fs::read(dir.path().join("shard-0/wal.log")).unwrap();
    let wal1 = std::fs::read(dir.path().join("shard-1/wal.log")).unwrap();

    // Tear each shard's WAL in turn at a dense spread of byte positions —
    // with 8-record batches most of these land strictly inside a batched
    // group, between and within the frames of replicated records.
    for &(torn_shard, torn, intact) in &[(1usize, &wal1, &wal0), (0usize, &wal0, &wal1)] {
        let stride = (torn.len() / 12).max(1);
        let mut cuts: Vec<usize> = (0..12).map(|k| k * stride + 13).collect();
        cuts.push(torn.len() - 3);
        for &cut in cuts.iter().filter(|&&c| c < torn.len()) {
            let crash = tempfile::tempdir().unwrap();
            std::fs::create_dir_all(crash.path().join("shard-0")).unwrap();
            std::fs::create_dir_all(crash.path().join("shard-1")).unwrap();
            let intact_shard = 1 - torn_shard;
            std::fs::write(
                crash.path().join(format!("shard-{intact_shard}")).join("wal.log"),
                intact,
            )
            .unwrap();
            std::fs::write(
                crash.path().join(format!("shard-{torn_shard}")).join("wal.log"),
                &torn[..cut],
            )
            .unwrap();

            let recovered = ShardedGraph::open(sharded_options(crash.path(), 2)).unwrap();
            let got = sharded_edge_set(&recovered);
            assert_atomic_cut(&got);
            assert_eq!(
                got, committed,
                "shard {torn_shard} torn mid-batch at byte {cut}: the intact \
                 replica must recover every committed transaction"
            );
        }
    }
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    // Recover, append, "crash" (drop without checkpoint), recover again —
    // five times. Nothing may be lost or duplicated.
    let dir = tempfile::tempdir().unwrap();
    let mut expected = 0usize;
    for round in 0..5 {
        let graph = LiveGraph::open(durable_options(dir.path())).unwrap();
        assert_eq!(edge_set(&graph).len(), expected, "round {round} lost data");
        let mut txn = graph.begin_write().unwrap();
        let a = txn.create_vertex(format!("r{round}").as_bytes()).unwrap();
        let b = txn.create_vertex(b"t").unwrap();
        txn.put_edge(a, LABEL, b, b"x").unwrap();
        txn.commit().unwrap();
        expected += 1;
        // graph dropped here without a clean checkpoint
    }
    let final_graph = LiveGraph::open(durable_options(dir.path())).unwrap();
    assert_eq!(edge_set(&final_graph).len(), expected);
}
