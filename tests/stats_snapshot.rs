//! The [`GraphStats`] weak-snapshot contract, pinned under live write load.
//!
//! `LiveGraph::stats` reads its counters without a consistent cut: a
//! snapshot taken mid-commit may pair a WAL-group count from *after* a
//! flush with a record count from *before* it — but never the reverse.
//! The contract (documented on `GraphStats`) is per-field monotonicity
//! plus the cross-field invariant `wal_group_records >= wal_groups`:
//! group counters are bumped records-first on the flush path, so a
//! snapshot that observes a formed group also observes that group's
//! records. These tests hammer `stats()` from a dedicated reader while
//! concurrent committers drive the group-commit path, then re-check the
//! totals once the graph is quiesced (where the snapshot *is* exact).
//!
//! [`GraphStats`]: livegraph::core::GraphStats

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use livegraph::core::{GraphStats, GroupCommitConfig, LiveGraph, LiveGraphOptions, SyncMode};

const LABEL: u16 = 0;
const WRITERS: usize = 4;
const TXNS_PER_WRITER: usize = 150;

fn options(dir: &Path) -> LiveGraphOptions {
    // A simulated log device with a visible per-group latency: flush
    // leaders linger long enough for multi-record batches to actually
    // form, so `wal_group_records > wal_groups` is exercised, not just
    // permitted.
    LiveGraphOptions::durable(dir)
        .with_capacity(1 << 24)
        .with_max_vertices(1 << 13)
        .with_sync_mode(SyncMode::Simulated(Duration::from_micros(200)))
        .with_group_commit(GroupCommitConfig::default())
}

/// Every monotone counter in one place, so the reader below asserts the
/// whole contract and a future field can't silently dodge the test.
fn monotone_fields(s: &GraphStats) -> [(&'static str, u64); 8] {
    [
        ("vertex_count", s.vertex_count),
        ("edge_insert_count", s.edge_insert_count),
        ("wal_bytes", s.wal_bytes),
        ("wal_fsyncs", s.wal_fsyncs),
        ("wal_groups", s.wal_groups),
        ("wal_group_records", s.wal_group_records),
        ("read_epoch", s.read_epoch as u64),
        ("write_epoch", s.write_epoch as u64),
    ]
}

fn assert_invariants(s: &GraphStats) {
    assert!(
        s.wal_group_records >= s.wal_groups,
        "snapshot shows a flushed group without its records: \
         {} groups vs {} records",
        s.wal_groups,
        s.wal_group_records,
    );
    assert!(!s.wal_torn, "no fault injection in this test");
}

#[test]
fn stats_snapshot_is_monotone_under_concurrent_commits() {
    let dir = tempfile::tempdir().unwrap();
    let graph = LiveGraph::open(options(dir.path())).unwrap();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let graph = &graph;
                scope.spawn(move || {
                    for s in 0..TXNS_PER_WRITER {
                        let tag = format!("w{w:02}s{s:03}");
                        let mut txn = graph.begin_write().unwrap();
                        let a = txn.create_vertex(format!("{tag}a").as_bytes()).unwrap();
                        let b = txn.create_vertex(format!("{tag}b").as_bytes()).unwrap();
                        txn.put_edge(a, LABEL, b, tag.as_bytes()).unwrap();
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();

        // The reader races `stats()` against the committers for the whole
        // run: every successive pair of snapshots must be per-field
        // monotone, and every single snapshot must satisfy the
        // records-vs-groups ordering.
        let reader = scope.spawn(|| {
            let mut prev = graph.stats();
            let mut snapshots = 1u64;
            assert_invariants(&prev);
            while !done.load(Ordering::Acquire) {
                let cur = graph.stats();
                assert_invariants(&cur);
                for ((name, before), (_, after)) in
                    monotone_fields(&prev).into_iter().zip(monotone_fields(&cur))
                {
                    assert!(
                        after >= before,
                        "{name} went backwards across snapshots: {before} -> {after}"
                    );
                }
                prev = cur;
                snapshots += 1;
                std::thread::yield_now();
            }
            snapshots
        });

        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let snapshots = reader.join().unwrap();
        assert!(
            snapshots > 100,
            "reader barely ran ({snapshots} snapshots); the race this test \
             exists for was not exercised"
        );
    });

    // Quiesced: the weak snapshot is now exact. Every commit carried one
    // WAL record, so the record total equals the commit count, and with a
    // 200us simulated device under 4 writers at least one multi-record
    // batch must have formed.
    let total_txns = (WRITERS * TXNS_PER_WRITER) as u64;
    let end = graph.stats();
    assert_invariants(&end);
    assert_eq!(end.vertex_count, 2 * total_txns);
    assert_eq!(end.edge_insert_count, total_txns);
    assert_eq!(end.wal_group_records, total_txns);
    assert!(
        end.wal_groups < end.wal_group_records,
        "no multi-record WAL batch formed ({} groups for {} records); \
         group commit was not exercised",
        end.wal_groups,
        end.wal_group_records,
    );
}

#[test]
fn quiesced_stats_match_between_consecutive_snapshots() {
    let dir = tempfile::tempdir().unwrap();
    let graph = LiveGraph::open(options(dir.path())).unwrap();
    for s in 0..10 {
        let mut txn = graph.begin_write().unwrap();
        let a = txn.create_vertex(format!("q{s}a").as_bytes()).unwrap();
        let b = txn.create_vertex(format!("q{s}b").as_bytes()).unwrap();
        txn.put_edge(a, LABEL, b, b"q").unwrap();
        txn.commit().unwrap();
    }
    // With no writers in flight, two back-to-back snapshots agree on
    // every monotone field — the weakness is only ever a *lag*, never
    // noise in a quiet system.
    let first = graph.stats();
    let second = graph.stats();
    assert_invariants(&first);
    assert_eq!(monotone_fields(&first), monotone_fields(&second));
    assert_eq!(first.wal_group_records, 10);
}
