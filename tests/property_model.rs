//! Property-based model checking of the transactional API.
//!
//! A random sequence of graph mutations is applied through committed
//! LiveGraph transactions and, in parallel, to a trivially-correct in-memory
//! model. After every sequence the committed LiveGraph state must match the
//! model exactly — vertex payloads, deletion status, per-label adjacency
//! sets and edge payloads. A snapshot taken halfway through must keep
//! matching the halfway model even as later mutations commit (snapshot
//! isolation), which is the invariant the paper's design hinges on.

use std::collections::HashMap;

use livegraph::core::{LiveGraph, LiveGraphOptions, ReadTxn};
use proptest::prelude::*;

const VERTICES: u64 = 24;
const LABELS: u16 = 3;

/// One mutation, expressed over a small id space so collisions are common.
#[derive(Debug, Clone)]
enum Op {
    PutVertex { vertex: u64, tag: u8 },
    DeleteVertex { vertex: u64 },
    PutEdge { src: u64, label: u16, dst: u64, tag: u8 },
    DeleteEdge { src: u64, label: u16, dst: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..VERTICES, any::<u8>()).prop_map(|(vertex, tag)| Op::PutVertex { vertex, tag }),
        (0..VERTICES).prop_map(|vertex| Op::DeleteVertex { vertex }),
        (0..VERTICES, 0..LABELS, 0..VERTICES, any::<u8>())
            .prop_map(|(src, label, dst, tag)| Op::PutEdge { src, label, dst, tag }),
        (0..VERTICES, 0..LABELS, 0..VERTICES)
            .prop_map(|(src, label, dst)| Op::DeleteEdge { src, label, dst }),
    ]
}

/// Trivially-correct reference model.
#[derive(Debug, Clone, Default)]
struct Model {
    /// vertex -> Some(payload) if alive, None if deleted.
    vertices: HashMap<u64, Option<Vec<u8>>>,
    /// (src, label, dst) -> payload.
    edges: HashMap<(u64, u16, u64), Vec<u8>>,
}

impl Model {
    /// Whether an application-level client would issue this operation.
    ///
    /// LiveGraph (like the paper) does not re-validate liveness of the source
    /// vertex on every edge write — recovery replay depends on being able to
    /// append edges before the vertex record arrives — so a client that kept
    /// adding edges to a vertex it already deleted would see them until the
    /// deleted vertex is reclaimed. The model mirrors a well-behaved client
    /// and simply never issues such writes.
    fn should_apply(&self, op: &Op) -> bool {
        match op {
            Op::PutEdge { src, .. } => !matches!(self.vertices.get(src), Some(None)),
            _ => true,
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::PutVertex { vertex, tag } => {
                self.vertices.insert(*vertex, Some(vec![*tag]));
            }
            Op::DeleteVertex { vertex } => {
                // Mirrors LiveGraph semantics: the tombstone hides the vertex
                // and the same transaction invalidates all of its out-edges.
                if matches!(self.vertices.get(vertex), Some(Some(_))) {
                    self.vertices.insert(*vertex, None);
                    self.edges.retain(|&(src, _, _), _| src != *vertex);
                }
            }
            Op::PutEdge { src, label, dst, tag } => {
                self.edges.insert((*src, *label, *dst), vec![*tag]);
            }
            Op::DeleteEdge { src, label, dst } => {
                self.edges.remove(&(*src, *label, *dst));
            }
        }
    }
}

fn apply_to_graph(graph: &LiveGraph, op: &Op) {
    let mut txn = graph.begin_write().unwrap();
    match op {
        Op::PutVertex { vertex, tag } => {
            txn.put_vertex(*vertex, &[*tag]).unwrap();
        }
        Op::DeleteVertex { vertex } => {
            txn.delete_vertex(*vertex).unwrap();
        }
        Op::PutEdge { src, label, dst, tag } => {
            txn.put_edge(*src, *label, *dst, &[*tag]).unwrap();
        }
        Op::DeleteEdge { src, label, dst } => {
            txn.delete_edge(*src, *label, *dst).unwrap();
        }
    }
    txn.commit().unwrap();
}

/// Checks that a snapshot agrees with a model on every vertex and edge.
fn assert_matches(read: &ReadTxn<'_>, model: &Model, context: &str) {
    for vertex in 0..VERTICES {
        let expected = model.vertices.get(&vertex).cloned().flatten();
        let got = read.get_vertex(vertex).map(|p| p.to_vec());
        assert_eq!(got, expected, "{context}: vertex {vertex} payload diverged");
        for label in 0..LABELS {
            let mut got_edges: Vec<(u64, Vec<u8>)> = read
                .edges(vertex, label)
                .map(|e| (e.dst, e.properties.to_vec()))
                .collect();
            got_edges.sort();
            let mut expected_edges: Vec<(u64, Vec<u8>)> = model
                .edges
                .iter()
                .filter(|&(&(s, l, _), _)| s == vertex && l == label)
                .map(|(&(_, _, d), payload)| (d, payload.clone()))
                .collect();
            expected_edges.sort();
            assert_eq!(
                got_edges, expected_edges,
                "{context}: adjacency of ({vertex}, {label}) diverged"
            );
        }
    }
}

fn graph_under_test() -> LiveGraph {
    LiveGraph::open(
        LiveGraphOptions::in_memory()
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 12)
            // Recycling ids would make the model's id space drift; the
            // dedicated deletion tests cover recycling.
            .with_auto_compaction(false),
    )
    .unwrap()
}

fn setup(graph: &LiveGraph, model: &mut Model) {
    let mut txn = graph.begin_write().unwrap();
    for v in 0..VERTICES {
        let id = txn.create_vertex(&[v as u8]).unwrap();
        assert_eq!(id, v);
        model.vertices.insert(v, Some(vec![v as u8]));
    }
    txn.commit().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn committed_state_matches_the_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let graph = graph_under_test();
        let mut model = Model::default();
        setup(&graph, &mut model);

        for op in &ops {
            if !model.should_apply(op) {
                continue;
            }
            apply_to_graph(&graph, op);
            model.apply(op);
        }
        let read = graph.begin_read().unwrap();
        assert_matches(&read, &model, "final state");
    }

    #[test]
    fn snapshots_are_stable_while_later_transactions_commit(
        ops in proptest::collection::vec(op_strategy(), 2..100)
    ) {
        let graph = graph_under_test();
        let mut model = Model::default();
        setup(&graph, &mut model);

        let split = ops.len() / 2;
        for op in &ops[..split] {
            if !model.should_apply(op) {
                continue;
            }
            apply_to_graph(&graph, op);
            model.apply(op);
        }
        // Pin a snapshot and remember the model at this point.
        let pinned = graph.begin_read().unwrap();
        let pinned_model = model.clone();

        for op in &ops[split..] {
            if !model.should_apply(op) {
                continue;
            }
            apply_to_graph(&graph, op);
            model.apply(op);
        }

        // The pinned snapshot must still match the halfway model …
        assert_matches(&pinned, &pinned_model, "pinned snapshot");
        // … and a fresh snapshot matches the final model.
        let fresh = graph.begin_read().unwrap();
        assert_matches(&fresh, &model, "fresh snapshot");
    }

    #[test]
    fn compaction_never_changes_the_visible_state(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let graph = graph_under_test();
        let mut model = Model::default();
        setup(&graph, &mut model);
        for op in &ops {
            if !model.should_apply(op) {
                continue;
            }
            apply_to_graph(&graph, op);
            model.apply(op);
        }
        // Run compaction repeatedly (retire + free) and re-check.
        graph.compact();
        graph.compact();
        let read = graph.begin_read().unwrap();
        assert_matches(&read, &model, "after compaction");
    }
}
