//! Group-commit batching and crash-consistency tests (§5 persist phase).
//!
//! The first half drives many concurrent committers through one WAL and
//! checks the two sides of the group-commit contract: every commit that
//! returned success is durable across recovery, and the WAL issued fewer
//! fsyncs than there were commits (batching actually happened).
//!
//! The second half is the fault-injection harness: `SyncMode::CrashAt`
//! makes the log device "die" at an arbitrary byte boundary — including
//! *inside* a batched group — while continuing to ack writes. The oracle
//! then asserts that recovery replays exactly the durable prefix of commit
//! epochs: every transaction acked before the tear survives, every
//! survivor is complete (never a partial transaction), and survival is
//! epoch-prefix-closed — if any transaction of epoch `E` survived, every
//! logged transaction with an earlier epoch survived too. No torn group
//! ever surfaces a suffix or a torn record of a multi-record batch.

use std::path::Path;
use std::time::Duration;

use livegraph::core::{GroupCommitConfig, LiveGraph, LiveGraphOptions, SyncMode};

const LABEL: u16 = 0;

/// One committed workload transaction, as logged by the thread that ran it:
/// the assigned epoch, the two vertices it created, its payload tag, and
/// whether the WAL was still intact when the commit was acked.
#[derive(Debug, Clone)]
struct LoggedTxn {
    epoch: i64,
    a: u64,
    b: u64,
    tag: String,
    acked_pre_tear: bool,
}

fn options(dir: &Path, sync: SyncMode, group_commit: GroupCommitConfig) -> LiveGraphOptions {
    LiveGraphOptions::durable(dir)
        .with_capacity(1 << 24)
        .with_max_vertices(1 << 12)
        .with_sync_mode(sync)
        .with_group_commit(group_commit)
}

/// Runs `threads × txns_per_thread` concurrent transactions. Each creates
/// two vertices and links them in both directions with fixed-width payloads
/// (so the WAL byte size of the run is deterministic regardless of thread
/// interleaving — the torn-batch test relies on that to pre-compute tear
/// offsets). Returns one log entry per committed transaction.
fn run_concurrent_workload(
    graph: &LiveGraph,
    threads: usize,
    txns_per_thread: usize,
) -> Vec<LoggedTxn> {
    let mut logs: Vec<LoggedTxn> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut log = Vec::with_capacity(txns_per_thread);
                    for s in 0..txns_per_thread {
                        let tag = format!("w{w:02}s{s:03}");
                        let mut txn = graph.begin_write().unwrap();
                        let a = txn.create_vertex(format!("{tag}a").as_bytes()).unwrap();
                        let b = txn.create_vertex(format!("{tag}b").as_bytes()).unwrap();
                        txn.put_edge(a, LABEL, b, format!("{tag}f").as_bytes()).unwrap();
                        txn.put_edge(b, LABEL, a, format!("{tag}r").as_bytes()).unwrap();
                        let epoch = txn.commit().unwrap();
                        // Read the tear flag only *after* the commit ack. If
                        // our own flush was torn, the flag was already set
                        // when the ack arrived, so `acked_pre_tear == true`
                        // is a sound durability claim; the only race
                        // direction misclassifies a durable commit as
                        // unknown, never the reverse.
                        let acked_pre_tear = !graph.stats().wal_torn;
                        log.push(LoggedTxn {
                            epoch,
                            a,
                            b,
                            tag,
                            acked_pre_tear,
                        });
                    }
                    log
                })
            })
            .collect();
        for h in handles {
            logs.extend(h.join().unwrap());
        }
    });
    logs
}

/// Whether `txn` survived into `graph` — `Some(true)` fully, `Some(false)`
/// not at all, and a panic on partial survival (atomicity violation).
fn survived(graph: &LiveGraph, txn: &LoggedTxn) -> bool {
    let read = graph.begin_read().unwrap();
    let mut present = 0;
    let mut absent = 0;
    for (vertex, payload) in [(txn.a, format!("{}a", txn.tag)), (txn.b, format!("{}b", txn.tag))] {
        match read.get_vertex(vertex) {
            Some(bytes) if bytes == payload.as_bytes() => present += 1,
            Some(other) => panic!(
                "vertex {vertex} of {} recovered with foreign payload {:?}",
                txn.tag,
                String::from_utf8_lossy(other)
            ),
            None => absent += 1,
        }
    }
    for (src, dst, payload) in [
        (txn.a, txn.b, format!("{}f", txn.tag)),
        (txn.b, txn.a, format!("{}r", txn.tag)),
    ] {
        if read
            .edges(src, LABEL)
            .any(|e| e.dst == dst && e.properties == payload.as_bytes())
        {
            present += 1;
        } else {
            absent += 1;
        }
    }
    assert!(
        present == 0 || absent == 0,
        "transaction {} (epoch {}) recovered partially: {present} of {} pieces \
         present — replay must be all-or-nothing per record",
        txn.tag,
        txn.epoch,
        present + absent
    );
    present > 0
}

#[test]
fn concurrent_commits_batch_fsyncs_and_all_survive_recovery() {
    let dir = tempfile::tempdir().unwrap();
    const THREADS: usize = 6;
    const TXNS: usize = 25;
    let cfg = GroupCommitConfig::default()
        .with_max_batch(16)
        .with_max_wait(Duration::from_millis(1));
    let logs;
    {
        let graph = LiveGraph::open(options(dir.path(), SyncMode::Fsync, cfg)).unwrap();
        logs = run_concurrent_workload(&graph, THREADS, TXNS);
        let stats = graph.stats();
        let commits = (THREADS * TXNS) as u64;
        assert_eq!(stats.wal_group_records, commits, "every commit must be logged");
        assert!(
            stats.wal_fsyncs < commits,
            "{} fsyncs for {commits} commits: group commit never batched",
            stats.wal_fsyncs
        );
        assert!(stats.wal_fsyncs > 0, "durable commits must sync at least once");
        assert_eq!(
            stats.wal_fsyncs, stats.wal_groups,
            "exactly one fsync per flushed batch"
        );
        assert!(!stats.wal_torn);
    }
    // "Crash" (drop without checkpoint) and recover: every acked commit is
    // durable, no matter which flush batch it rode in.
    let recovered = LiveGraph::open(options(dir.path(), SyncMode::Fsync, cfg)).unwrap();
    assert_eq!(logs.len(), THREADS * TXNS);
    for txn in &logs {
        assert!(
            survived(&recovered, txn),
            "acked transaction {} (epoch {}) lost by recovery",
            txn.tag,
            txn.epoch
        );
    }
}

#[test]
fn linger_bounded_by_max_wait_still_commits_a_lone_writer() {
    // A lone committer under a large batch cap and a non-zero linger must
    // pay at most (roughly) `max_wait`, not block until the batch fills.
    let dir = tempfile::tempdir().unwrap();
    let cfg = GroupCommitConfig::default()
        .with_max_batch(1024)
        .with_max_wait(Duration::from_millis(5));
    let graph = LiveGraph::open(options(dir.path(), SyncMode::Fsync, cfg)).unwrap();
    let start = std::time::Instant::now();
    let mut txn = graph.begin_write().unwrap();
    let v = txn.create_vertex(b"lone").unwrap();
    txn.put_edge(v, LABEL, v, b"self").unwrap();
    txn.commit().unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "lone commit must not wait for a batch that will never fill"
    );
    assert_eq!(graph.stats().wal_group_records, 1);
}

#[test]
fn torn_batch_recovery_replays_exactly_the_durable_prefix() {
    const THREADS: usize = 4;
    const TXNS: usize = 20;
    let cfg = GroupCommitConfig::default()
        .with_max_batch(8)
        .with_max_wait(Duration::from_millis(1));

    // Sizing run: same workload shape on an intact log. Fixed-width
    // payloads and fixed-width integer encodings make the total WAL byte
    // count independent of scheduling, so tear offsets computed from this
    // run land at the same relative positions in every crash run.
    let total_bytes = {
        let dir = tempfile::tempdir().unwrap();
        let graph = LiveGraph::open(options(dir.path(), SyncMode::NoSync, cfg)).unwrap();
        run_concurrent_workload(&graph, THREADS, TXNS);
        let bytes = graph.stats().wal_bytes;
        assert!(bytes > 0);
        bytes
    };

    // Tear at a spread of byte boundaries: at the very start, mid-stream
    // (guaranteed to fall inside batched groups — batches are forced by the
    // 1 ms linger), a few bytes short of the end (torn final record), and
    // past the end (no tear at all, as a control).
    let cuts = [
        1,
        total_bytes / 6,
        total_bytes / 3,
        total_bytes / 2,
        total_bytes * 2 / 3,
        total_bytes - 7,
        total_bytes - 1,
        total_bytes + 1,
    ];
    for &cut in &cuts {
        let dir = tempfile::tempdir().unwrap();
        let logs;
        {
            let graph =
                LiveGraph::open(options(dir.path(), SyncMode::CrashAt(cut), cfg)).unwrap();
            logs = run_concurrent_workload(&graph, THREADS, TXNS);
            let stats = graph.stats();
            assert_eq!(
                stats.wal_torn,
                cut <= total_bytes,
                "cut at {cut} of {total_bytes}: tear flag must reflect dropped bytes"
            );
            assert!(stats.wal_bytes <= cut, "no byte may land past the dead device");
        }
        // Every commit was acked (the dead device lies); recovery now
        // decides which of them actually exist.
        assert_eq!(logs.len(), THREADS * TXNS);
        let recovered = LiveGraph::open(options(dir.path(), SyncMode::NoSync, cfg)).unwrap();
        let survivors: Vec<bool> = logs.iter().map(|t| survived(&recovered, t)).collect();

        // Durability: a commit acked while the log was still intact must
        // survive — its batch's fsync completed before the tear.
        for (txn, &ok) in logs.iter().zip(&survivors) {
            assert!(
                !txn.acked_pre_tear || ok,
                "cut {cut}: transaction {} (epoch {}) was acked before the tear \
                 but did not survive recovery",
                txn.tag,
                txn.epoch
            );
        }

        // Epoch-prefix: per-WAL file order equals epoch order, so if any
        // transaction of epoch E survived, every logged transaction with an
        // earlier epoch lies wholly below the tear and must survive too.
        // Partial survival is possible only *within* the torn epoch.
        if let Some(max_epoch) =
            logs.iter().zip(&survivors).filter(|(_, &ok)| ok).map(|(t, _)| t.epoch).max()
        {
            for (txn, &ok) in logs.iter().zip(&survivors) {
                assert!(
                    txn.epoch >= max_epoch || ok,
                    "cut {cut}: epoch {} survived but earlier epoch {} (txn {}) \
                     was lost — recovery replayed a non-prefix of the log",
                    max_epoch,
                    txn.epoch,
                    txn.tag
                );
            }
        }

        // Control: a cut past the end of the stream must lose nothing.
        if cut > total_bytes {
            assert!(survivors.iter().all(|&ok| ok), "cut past EOF lost transactions");
        }
    }
}
