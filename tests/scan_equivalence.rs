//! Property test: the sealed zero-check scan fast path is observationally
//! identical to the per-entry-checked scan.
//!
//! `ReadTxn::for_each_neighbor` silently switches between the zero-check
//! streaming scan (sealed TEL: last commit covered by the snapshot, no
//! committed invalidations) and the checked fallback. `ReadTxn::edges` always
//! runs the checked scan, and `ReadTxn::degree` answers from the header
//! summary in O(1) on sealed TELs. Under random interleavings of edge
//! upserts, edge deletions and compaction passes, all three views must agree
//! — for the current snapshot, for every historical epoch (time-travel
//! reads), and for writer transactions with uncommitted private edits.

use livegraph::core::{LiveGraph, LiveGraphOptions, ReadTxn, Timestamp, WriteTxn};
use proptest::prelude::*;

const VERTICES: u64 = 10;
const LABELS: u16 = 2;

#[derive(Debug, Clone)]
enum Op {
    PutEdge { src: u64, label: u16, dst: u64 },
    DeleteEdge { src: u64, label: u16, dst: u64 },
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! draws arms uniformly; repeating the put/delete
    // arms weights the mix towards mutations over compaction passes.
    prop_oneof![
        (0..VERTICES, 0..LABELS, 0..VERTICES)
            .prop_map(|(src, label, dst)| Op::PutEdge { src, label, dst }),
        (0..VERTICES, 0..LABELS, 0..VERTICES)
            .prop_map(|(src, label, dst)| Op::PutEdge { src, label, dst }),
        (0..VERTICES, 0..LABELS, 0..VERTICES)
            .prop_map(|(src, label, dst)| Op::PutEdge { src, label, dst }),
        (0..VERTICES, 0..LABELS, 0..VERTICES)
            .prop_map(|(src, label, dst)| Op::DeleteEdge { src, label, dst }),
        (0..VERTICES, 0..LABELS, 0..VERTICES)
            .prop_map(|(src, label, dst)| Op::DeleteEdge { src, label, dst }),
        Just(Op::Compact),
    ]
}

fn graph_under_test() -> LiveGraph {
    LiveGraph::open(
        LiveGraphOptions::in_memory()
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 12)
            .with_auto_compaction(false)
            // Keep every version so time-travel reads stay answerable at all
            // recorded epochs even across explicit compaction passes.
            .with_history_retention(1 << 40),
    )
    .unwrap()
}

/// The checked reference view: dsts via the `EdgeIter` scan, newest first.
fn checked_dsts(read: &ReadTxn<'_>, v: u64, label: u16) -> Vec<u64> {
    read.edges(v, label).map(|e| e.dst).collect()
}

/// Asserts fast path ≡ checked path (and the O(1) degree) on one snapshot.
fn assert_read_equivalence(read: &ReadTxn<'_>, context: &str) {
    for v in 0..VERTICES {
        for label in 0..LABELS {
            let checked = checked_dsts(read, v, label);
            let mut fast = Vec::new();
            read.for_each_neighbor(v, label, |d| fast.push(d));
            assert_eq!(
                fast, checked,
                "{context}: fast-path scan of ({v}, {label}) diverged"
            );
            let mut chunked = Vec::new();
            read.for_each_neighbor_chunk(v, label, |chunk| chunked.extend_from_slice(chunk));
            assert_eq!(
                chunked, checked,
                "{context}: chunked scan of ({v}, {label}) diverged"
            );
            assert_eq!(
                read.degree(v, label),
                checked.len(),
                "{context}: degree of ({v}, {label}) diverged"
            );
        }
    }
}

/// Asserts the writer-side visitor (always checked, sees private edits)
/// matches the writer's own `EdgeIter` view.
fn assert_write_equivalence(txn: &WriteTxn<'_>, context: &str) {
    for v in 0..VERTICES {
        for label in 0..LABELS {
            let checked: Vec<u64> = txn.edges(v, label).map(|e| e.dst).collect();
            let mut fast = Vec::new();
            txn.for_each_neighbor(v, label, |d| fast.push(d));
            assert_eq!(
                fast, checked,
                "{context}: writer scan of ({v}, {label}) diverged"
            );
        }
    }
}

fn setup(graph: &LiveGraph) {
    let mut txn = graph.begin_write().unwrap();
    for v in 0..VERTICES {
        let id = txn.create_vertex(&[v as u8]).unwrap();
        assert_eq!(id, v);
    }
    txn.commit().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn fast_path_scan_matches_checked_scan_at_every_epoch(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let graph = graph_under_test();
        setup(&graph);
        let mut epochs: Vec<Timestamp> = Vec::new();

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::PutEdge { src, label, dst } => {
                    let mut txn = graph.begin_write().unwrap();
                    txn.put_edge(*src, *label, *dst, &[i as u8]).unwrap();
                    epochs.push(txn.commit().unwrap());
                }
                Op::DeleteEdge { src, label, dst } => {
                    let mut txn = graph.begin_write().unwrap();
                    txn.delete_edge(*src, *label, *dst).unwrap();
                    epochs.push(txn.commit().unwrap());
                }
                Op::Compact => {
                    // Two passes: retire, then free (needs no active readers).
                    graph.compact();
                    graph.compact();
                }
            }
            // Fresh snapshot after every step.
            let read = graph.begin_read().unwrap();
            assert_read_equivalence(&read, &format!("step {i}"));
        }

        // Every historical epoch must agree too (the fast path must refuse
        // TELs whose last commit the time-travel snapshot does not cover).
        for &epoch in &epochs {
            let read = graph.begin_read_at(epoch).unwrap();
            assert_read_equivalence(&read, &format!("epoch {epoch}"));
        }
    }

    #[test]
    fn writer_transactions_always_see_their_private_writes(
        committed in proptest::collection::vec(op_strategy(), 1..30),
        pending in proptest::collection::vec(op_strategy(), 1..10)
    ) {
        let graph = graph_under_test();
        setup(&graph);
        for op in &committed {
            match op {
                Op::PutEdge { src, label, dst } => {
                    let mut txn = graph.begin_write().unwrap();
                    txn.put_edge(*src, *label, *dst, b"c").unwrap();
                    txn.commit().unwrap();
                }
                Op::DeleteEdge { src, label, dst } => {
                    let mut txn = graph.begin_write().unwrap();
                    txn.delete_edge(*src, *label, *dst).unwrap();
                    txn.commit().unwrap();
                }
                Op::Compact => graph.compact(),
            }
        }

        // Apply the pending ops inside ONE uncommitted transaction, checking
        // the writer-side visitor after each private mutation.
        let mut txn = graph.begin_write().unwrap();
        for (i, op) in pending.iter().enumerate() {
            match op {
                Op::PutEdge { src, label, dst } => {
                    txn.put_edge(*src, *label, *dst, b"p").unwrap();
                }
                Op::DeleteEdge { src, label, dst } => {
                    txn.delete_edge(*src, *label, *dst).unwrap();
                }
                Op::Compact => continue,
            }
            assert_write_equivalence(&txn, &format!("pending step {i}"));
        }
        txn.abort();

        // Aborting restored the committed state for readers.
        let read = graph.begin_read().unwrap();
        assert_read_equivalence(&read, "after abort");
    }
}
