//! End-to-end tests of the networked service layer over loopback TCP.
//!
//! The server runs in-process, so every test can compare what remote
//! clients observe against a direct in-process oracle on the very same
//! engine instance (`Engine::as_plain`): snapshot isolation, epoch pins,
//! lock cleanup and recovery are asserted against ground truth rather than
//! a second client's view.

use std::sync::Arc;
use std::time::{Duration, Instant};

use livegraph::core::{LiveGraph, LiveGraphOptions, SyncMode, DEFAULT_LABEL};
use livegraph::server::{
    Client, ClientError, Engine, ErrorCode, ReactorConfig, ReactorServer, Server, ServerConfig,
};
use livegraph::workloads::{
    load_base_graph, run_workload, DriverConfig, LinkBenchBackend, LiveGraphBackend, OpMix,
    RemoteBackend,
};

fn small_graph() -> LiveGraph {
    LiveGraph::open(
        LiveGraphOptions::in_memory()
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 14)
            .with_auto_compaction(false),
    )
    .unwrap()
}

fn start(engine: Engine, workers: usize) -> (Arc<Engine>, Server) {
    let engine = Arc::new(engine);
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig::default().with_workers(workers),
    )
    .unwrap();
    (engine, server)
}

/// Same engine hosting, but on the epoll reactor: all connections
/// multiplexed on two event-loop threads instead of a thread each.
fn start_reactor(engine: Engine) -> (Arc<Engine>, ReactorServer) {
    let engine = Arc::new(engine);
    let server = ReactorServer::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ReactorConfig::default().with_event_threads(2),
    )
    .unwrap();
    (engine, server)
}

// ---------------------------------------------------------------------------
// Point ops, transactions, streaming
// ---------------------------------------------------------------------------

#[test]
fn point_ops_and_transactions_roundtrip_over_the_wire() {
    let (_engine, server) = start(Engine::Plain(small_graph()), 2);
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Explicit transaction.
    let txn = client.begin_write().unwrap();
    let a = client.create_vertex(txn, b"alice").unwrap();
    let b = client.create_vertex(txn, b"bob").unwrap();
    assert!(client.put_edge(Some(txn), a, DEFAULT_LABEL, b, b"follows").unwrap());
    let commit_epoch = client.commit(txn).unwrap();
    assert!(commit_epoch > 0);

    // Auto-commit ops observe the committed state.
    assert_eq!(client.get_vertex(None, a).unwrap(), Some(b"alice".to_vec()));
    assert_eq!(
        client.get_edge(None, a, DEFAULT_LABEL, b).unwrap(),
        Some(b"follows".to_vec())
    );
    assert_eq!(client.degree(None, a, DEFAULT_LABEL).unwrap(), 1);
    assert_eq!(client.neighbors(None, a, DEFAULT_LABEL, 0).unwrap(), vec![b]);

    // Deletions and aborts.
    let txn = client.begin_write().unwrap();
    assert!(client.delete_edge(Some(txn), a, DEFAULT_LABEL, b).unwrap());
    client.abort(txn).unwrap();
    assert_eq!(client.degree(None, a, DEFAULT_LABEL).unwrap(), 1, "abort rolled back");

    assert!(client.delete_edge(None, a, DEFAULT_LABEL, b).unwrap());
    assert_eq!(client.degree(None, a, DEFAULT_LABEL).unwrap(), 0);

    // Server-side errors arrive as typed responses, not broken connections.
    match client.put_vertex(None, 99_999, b"x") {
        Err(ClientError::Server { code: ErrorCode::VertexNotFound, .. }) => {}
        other => panic!("expected VertexNotFound, got {other:?}"),
    }
    client.ping().unwrap(); // connection still healthy
    drop(client);
    server.shutdown();
}

#[test]
fn neighbor_streaming_reassembles_large_adjacency_lists() {
    let (_engine, server) = start(Engine::Plain(small_graph()), 2);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let txn = client.begin_write().unwrap();
    let hub = client.create_vertex(txn, b"hub").unwrap();
    let n = livegraph::server::NEIGHBOR_CHUNK_DSTS * 3 + 41;
    let mut expected = Vec::new();
    for _ in 0..n {
        let d = client.create_vertex(txn, b"").unwrap();
        client.put_edge(Some(txn), hub, DEFAULT_LABEL, d, b"").unwrap();
        expected.push(d);
    }
    client.commit(txn).unwrap();
    expected.reverse(); // newest first

    let got = client.neighbors(None, hub, DEFAULT_LABEL, 0).unwrap();
    assert_eq!(got, expected, "chunked stream reassembles in scan order");
    let bounded = client.neighbors(None, hub, DEFAULT_LABEL, 7).unwrap();
    assert_eq!(bounded, expected[..7]);
    drop(client);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Snapshot isolation vs. the in-process oracle
// ---------------------------------------------------------------------------

/// Collects the full visible state of a snapshot: per-vertex properties and
/// adjacency, newest first.
fn snapshot_state_inproc(graph: &LiveGraph, epoch: i64) -> Vec<(u64, Option<Vec<u8>>, Vec<u64>)> {
    let read = graph.begin_read_at(epoch).unwrap();
    (0..graph.vertex_count())
        .map(|v| {
            let props = read.get_vertex(v).map(|p| p.to_vec());
            let dsts: Vec<u64> = read.edges(v, DEFAULT_LABEL).map(|e| e.dst).collect();
            (v, props, dsts)
        })
        .collect()
}

fn snapshot_state_remote(
    client: &mut Client,
    epoch: i64,
    vertices: u64,
) -> Vec<(u64, Option<Vec<u8>>, Vec<u64>)> {
    let txn = client.begin_read_at(epoch).unwrap();
    let state = (0..vertices)
        .map(|v| {
            let props = client.get_vertex(Some(txn), v).unwrap();
            let dsts = client.neighbors(Some(txn), v, DEFAULT_LABEL, 0).unwrap();
            (v, props, dsts)
        })
        .collect();
    client.commit(txn).unwrap();
    state
}

/// The snapshot-isolation oracle scenario, runnable against either server
/// flavor: concurrent remote writers, then remote readers pinned at every
/// commit epoch compared against the in-process oracle on the same engine.
fn si_oracle_scenario(addr: std::net::SocketAddr, graph: &LiveGraph) {
    // Seed a few vertices.
    let mut seeder = Client::connect(addr).unwrap();
    let txn = seeder.begin_write().unwrap();
    let mut ids = Vec::new();
    for i in 0..6u32 {
        ids.push(seeder.create_vertex(txn, format!("v{i}").as_bytes()).unwrap());
    }
    seeder.commit(txn).unwrap();

    // Two concurrent writer clients commit interleaved batches; every
    // commit epoch is recorded.
    let ids2 = ids.clone();
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let ids = ids2.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut epochs = Vec::new();
                for round in 0..10u64 {
                    let txn = client.begin_write().unwrap();
                    let src = ids[(w * 3) as usize];
                    let dst = ids[((round + w) % ids.len() as u64) as usize];
                    match client.put_edge(Some(txn), src, DEFAULT_LABEL, dst, b"e") {
                        Ok(_) => match client.commit(txn) {
                            Ok(epoch) => epochs.push(epoch),
                            Err(e) if e.is_write_conflict() => {}
                            Err(e) => panic!("commit failed: {e}"),
                        },
                        Err(e) if e.is_write_conflict() => {} // txn auto-aborted
                        Err(e) => panic!("put_edge failed: {e}"),
                    }
                }
                epochs
            })
        })
        .collect();
    let mut epochs: Vec<i64> = writers
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    epochs.sort_unstable();
    epochs.dedup();
    assert!(!epochs.is_empty());

    // A remote reader pinned at each committed epoch must see exactly what
    // the in-process oracle sees at that epoch.
    let mut reader = Client::connect(addr).unwrap();
    for &epoch in &epochs {
        let remote = snapshot_state_remote(&mut reader, epoch, graph.vertex_count());
        let oracle = snapshot_state_inproc(graph, epoch);
        assert_eq!(remote, oracle, "divergence at epoch {epoch}");
    }

    // And a long-lived remote read transaction is frozen at its snapshot
    // while new commits land.
    let frozen = reader.begin_read().unwrap();
    let before: Vec<u64> = reader
        .neighbors(Some(frozen), ids[0], DEFAULT_LABEL, 0)
        .unwrap();
    let txn = seeder.begin_write().unwrap();
    seeder
        .put_edge(Some(txn), ids[0], DEFAULT_LABEL, ids[5], b"late")
        .unwrap();
    seeder.commit(txn).unwrap();
    let after_frozen: Vec<u64> = reader
        .neighbors(Some(frozen), ids[0], DEFAULT_LABEL, 0)
        .unwrap();
    assert_eq!(before, after_frozen, "pinned snapshot must not move");
    reader.commit(frozen).unwrap();

    drop(reader);
    drop(seeder);
}

#[test]
fn multi_client_sessions_are_snapshot_isolated_and_match_the_oracle() {
    let (engine, server) = start(Engine::Plain(small_graph()), 4);
    si_oracle_scenario(server.local_addr(), engine.as_plain().unwrap());
    server.shutdown();
}

#[test]
fn reactor_sessions_are_snapshot_isolated_and_match_the_oracle() {
    let (engine, server) = start_reactor(Engine::Plain(small_graph()));
    si_oracle_scenario(server.local_addr(), engine.as_plain().unwrap());
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Disconnect cleanup (acceptance regression)
// ---------------------------------------------------------------------------

/// Polls until `cond` holds or the deadline passes.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The disconnect-cleanup scenario, runnable against either server flavor:
/// a client vanishing mid-write-transaction must leave no vertex locks or
/// epoch pins behind, and the server keeps serving.
fn disconnect_cleanup_scenario(addr: std::net::SocketAddr, graph: &LiveGraph) {
    // Seed two vertices.
    let mut setup = Client::connect(addr).unwrap();
    let txn = setup.begin_write().unwrap();
    let a = setup.create_vertex(txn, b"a").unwrap();
    let b = setup.create_vertex(txn, b"b").unwrap();
    setup.commit(txn).unwrap();

    // Client A begins a write transaction, locks `a` by touching it, and
    // then vanishes without committing or aborting.
    let mut doomed = Client::connect(addr).unwrap();
    let txn = doomed.begin_write().unwrap();
    doomed
        .put_edge(Some(txn), a, DEFAULT_LABEL, b, b"never-committed")
        .unwrap();
    assert!(
        graph.oldest_active_read_epoch().is_some(),
        "open remote txn pins an epoch"
    );
    doomed.close(); // hard disconnect mid-transaction

    // The server notices EOF, drops the session, and the WriteTxn
    // destructor rolls back: epoch pin cleared...
    wait_for("epoch pin release after disconnect", || {
        graph.oldest_active_read_epoch().is_none()
    });
    // ...vertex lock released: a direct in-process writer acquires it
    // immediately (it would time out against a leaked lock)...
    let mut w = graph.begin_write().unwrap();
    w.put_edge(a, DEFAULT_LABEL, b, b"after-disconnect").unwrap();
    w.commit().unwrap();
    // ...and the abandoned write never became visible.
    let read = graph.begin_read().unwrap();
    assert_eq!(read.get_edge(a, DEFAULT_LABEL, b), Some(&b"after-disconnect"[..]));
    assert_eq!(read.degree(a, DEFAULT_LABEL), 1);

    // The serving thread survived and serves the next connection.
    let mut again = Client::connect(addr).unwrap();
    again.ping().unwrap();
    drop(again);
    drop(setup);
}

#[test]
fn disconnect_mid_write_txn_leaves_no_locks_or_epoch_pins() {
    let (engine, server) = start(Engine::Plain(small_graph()), 2);
    disconnect_cleanup_scenario(server.local_addr(), engine.as_plain().unwrap());
    server.shutdown();
}

#[test]
fn reactor_disconnect_mid_write_txn_leaves_no_locks_or_epoch_pins() {
    let (engine, server) = start_reactor(Engine::Plain(small_graph()));
    disconnect_cleanup_scenario(server.local_addr(), engine.as_plain().unwrap());
    server.shutdown();
}

/// A pooled connection returned with a transaction still open must not
/// leak its server-side epoch pin / vertex locks into the idle pool: the
/// pool keeps the TCP connection (and so the server session) alive, so
/// `PooledClient`'s drop rolls open transactions back before re-pooling.
#[test]
fn pooled_connection_returned_with_open_txn_rolls_it_back() {
    use livegraph::server::ClientPool;

    let (engine, server) = start(Engine::Plain(small_graph()), 2);
    let graph = engine.as_plain().unwrap();

    let mut setup = Client::connect(server.local_addr()).unwrap();
    let txn = setup.begin_write().unwrap();
    let a = setup.create_vertex(txn, b"a").unwrap();
    let b = setup.create_vertex(txn, b"b").unwrap();
    setup.commit(txn).unwrap();
    drop(setup);

    let pool = ClientPool::connect(server.local_addr(), 1).unwrap();
    {
        // A worker errors out mid-transaction and returns the connection
        // without commit/abort (the early-`?` shape).
        let mut client = pool.get().unwrap();
        let txn = client.begin_write().unwrap();
        client
            .put_edge(Some(txn), a, DEFAULT_LABEL, b, b"never-committed")
            .unwrap();
        assert!(graph.oldest_active_read_epoch().is_some());
    }
    assert_eq!(pool.idle_count(), 1, "healthy connection re-pooled");
    // No disconnect happened — cleanup must come from the return itself.
    assert!(
        graph.oldest_active_read_epoch().is_none(),
        "pool return rolled the open transaction back"
    );
    // The vertex lock is free: an in-process writer acquires it at once,
    // and the abandoned write never became visible.
    let mut w = graph.begin_write().unwrap();
    w.put_edge(a, DEFAULT_LABEL, b, b"after-return").unwrap();
    w.commit().unwrap();
    let read = graph.begin_read().unwrap();
    assert_eq!(read.get_edge(a, DEFAULT_LABEL, b), Some(&b"after-return"[..]));

    // The re-pooled connection is still perfectly usable.
    let mut client = pool.get().unwrap();
    client.ping().unwrap();
    drop(client);
    drop(pool);
    server.shutdown();
}

#[test]
fn disconnect_with_open_read_txn_releases_its_pin() {
    let (engine, server) = start(Engine::Plain(small_graph()), 2);
    let graph = engine.as_plain().unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    let _txn = client.begin_read().unwrap();
    assert!(graph.oldest_active_read_epoch().is_some());
    client.close();
    wait_for("read pin release after disconnect", || {
        graph.oldest_active_read_epoch().is_none()
    });
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Workload driver through the remote backend (acceptance)
// ---------------------------------------------------------------------------

/// The full logical state a LinkBench backend can observe.
fn backend_state(backend: &dyn LinkBenchBackend, vertices: u64) -> Vec<(Option<Vec<u8>>, usize)> {
    (0..vertices)
        .map(|v| (backend.get_node(v), backend.count_links(v)))
        .collect()
}

#[test]
fn driver_dflt_mix_through_remote_backend_matches_in_process() {
    const VERTICES: u64 = 128;
    let config = DriverConfig {
        clients: 1, // deterministic: one client, fixed seed
        ops_per_client: 600,
        mix: OpMix::dflt(),
        num_vertices: VERTICES,
        zipf_exponent: 0.8,
        think_time: None,
        link_list_limit: 50,
        seed: 11,
        write_partitions: None,
    };

    // In-process run.
    let inproc_backend = Arc::new(LiveGraphBackend::new(small_graph()));
    load_base_graph(inproc_backend.as_ref(), VERTICES, 2, 3);
    let inproc_report = run_workload(Arc::clone(&inproc_backend) as _, &config);

    // Identical run through the service layer.
    let (_engine, server) = start(Engine::Plain(small_graph()), 3);
    let remote_backend =
        Arc::new(RemoteBackend::connect(server.local_addr(), config.clients).unwrap());
    load_base_graph(remote_backend.as_ref(), VERTICES, 2, 3);
    let remote_report = run_workload(Arc::clone(&remote_backend) as _, &config);

    assert_eq!(remote_report.total_ops, inproc_report.total_ops);
    assert_eq!(remote_report.backend, "remote");
    // Same deterministic op stream ⇒ identical final logical state.
    let total_vertices = inproc_backend.graph().vertex_count();
    assert_eq!(
        {
            let mut c = Client::connect(server.local_addr()).unwrap();
            let stats = c.stats().unwrap();
            stats.vertex_count
        },
        total_vertices,
        "both runs created the same number of vertices"
    );
    let inproc_state = backend_state(inproc_backend.as_ref(), total_vertices);
    let remote_state = backend_state(remote_backend.as_ref(), total_vertices);
    assert_eq!(remote_state, inproc_state, "final graph state diverged");

    drop(remote_backend);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Admin ops: checkpoint + recovery, stats
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_admin_op_prunes_wal_and_server_restart_recovers() {
    let dir = tempfile::tempdir().unwrap();
    let options = || {
        LiveGraphOptions::durable(dir.path())
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 14)
            .with_sync_mode(SyncMode::NoSync)
    };

    let (a, b, c);
    {
        let (_engine, server) = start(Engine::Plain(LiveGraph::open(options()).unwrap()), 2);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let txn = client.begin_write().unwrap();
        a = client.create_vertex(txn, b"a").unwrap();
        b = client.create_vertex(txn, b"b").unwrap();
        client.put_edge(Some(txn), a, DEFAULT_LABEL, b, b"pre-checkpoint").unwrap();
        client.commit(txn).unwrap();

        // Remote admin op: checkpoint + WAL prune.
        client.checkpoint().unwrap();
        assert!(dir.path().join("checkpoint.dat").exists());
        let wal_after_checkpoint = std::fs::metadata(dir.path().join("wal.log")).unwrap().len();

        // Post-checkpoint writes land in the WAL only.
        c = client.create_vertex_auto(b"c").unwrap();
        client.put_edge(None, a, DEFAULT_LABEL, c, b"post-checkpoint").unwrap();
        assert!(
            std::fs::metadata(dir.path().join("wal.log")).unwrap().len() > wal_after_checkpoint,
            "post-checkpoint commits must append to the pruned WAL"
        );
        drop(client);
        server.shutdown();
    }

    // A fresh server on the same data dir recovers checkpoint + WAL before
    // accepting connections.
    let (_engine, server) = start(Engine::Plain(LiveGraph::open(options()).unwrap()), 2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.get_vertex(None, a).unwrap(), Some(b"a".to_vec()));
    assert_eq!(
        client.get_edge(None, a, DEFAULT_LABEL, b).unwrap(),
        Some(b"pre-checkpoint".to_vec())
    );
    assert_eq!(
        client.get_edge(None, a, DEFAULT_LABEL, c).unwrap(),
        Some(b"post-checkpoint".to_vec())
    );
    assert_eq!(client.degree(None, a, DEFAULT_LABEL).unwrap(), 2);
    drop(client);
    server.shutdown();
}

#[test]
fn stats_admin_op_exposes_engine_and_scan_counters() {
    let (_engine, server) = start(Engine::Plain(small_graph()), 2);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let txn = client.begin_write().unwrap();
    let hub = client.create_vertex(txn, b"hub").unwrap();
    for _ in 0..10 {
        let d = client.create_vertex(txn, b"").unwrap();
        client.put_edge(Some(txn), hub, DEFAULT_LABEL, d, b"").unwrap();
    }
    client.commit(txn).unwrap();

    // Sealed scan (clean committed TEL) + point lookups.
    client.neighbors(None, hub, DEFAULT_LABEL, 0).unwrap();
    client.get_edge(None, hub, DEFAULT_LABEL, 1).unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.shards, 1);
    assert_eq!(stats.vertex_count, 11);
    assert_eq!(stats.edge_insert_count, 10);
    assert!(stats.sealed_scans >= 1, "clean TEL scan must ride the sealed path");
    assert!(stats.edge_lookups >= 1);
    assert!(stats.read_epoch >= 1);
    assert!(stats.write_epoch >= stats.read_epoch);
    drop(client);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Sharded engine behind the same wire protocol
// ---------------------------------------------------------------------------

#[test]
fn sharded_engine_serves_the_same_protocol() {
    use livegraph::core::{ShardedGraph, ShardedGraphOptions};
    let graph = ShardedGraph::open(
        ShardedGraphOptions::in_memory(2).with_base(
            LiveGraphOptions::in_memory()
                .with_capacity(1 << 22)
                .with_max_vertices(1 << 12),
        ),
    )
    .unwrap();
    let (_engine, server) = start(Engine::Sharded(graph), 2);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let txn = client.begin_write().unwrap();
    let a = client.create_vertex(txn, b"a").unwrap(); // shard 0
    let b = client.create_vertex(txn, b"b").unwrap(); // shard 1
    client.put_edge(Some(txn), a, DEFAULT_LABEL, b, b"x").unwrap();
    client.put_edge(Some(txn), b, DEFAULT_LABEL, a, b"y").unwrap(); // cross-shard txn
    client.commit(txn).unwrap();

    assert_eq!(client.neighbors(None, a, DEFAULT_LABEL, 0).unwrap(), vec![b]);
    assert_eq!(client.neighbors(None, b, DEFAULT_LABEL, 0).unwrap(), vec![a]);
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.vertex_count, 2);

    // Documented v1 limit: sharded checkpointing is unsupported, reported
    // as a typed error rather than a dropped connection.
    match client.checkpoint() {
        Err(ClientError::Server { code: ErrorCode::Unsupported, .. }) => {}
        other => panic!("expected Unsupported, got {other:?}"),
    }
    client.ping().unwrap();
    drop(client);
    server.shutdown();
}
