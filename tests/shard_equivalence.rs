//! Property test: the sharded engine is observationally equivalent to a
//! single [`LiveGraph`], at every epoch, for any shard count.
//!
//! The same random operation sequence is applied, one committed transaction
//! per operation, to a plain engine and to [`ShardedGraph`]s with N ∈
//! {1, 2, 4}. Because all engines start from the same setup transaction and
//! commit the same logical operations in the same single-threaded order,
//! their epoch counters stay in lockstep — which lets the test compare not
//! just the final state but the **full history**: a time-travel snapshot at
//! every epoch (vertex payloads, neighbour sets with edge payloads,
//! degrees) must be identical across all four engines, including while
//! per-shard compaction passes run interleaved with the writes.

use std::collections::BTreeMap;

use livegraph::core::{
    LiveGraph, LiveGraphOptions, ShardedGraph, ShardedGraphOptions, Timestamp,
};
use proptest::prelude::*;

const VERTICES: u64 = 8;
const LABELS: u16 = 2;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Debug, Clone)]
enum Op {
    PutEdge { src: u64, label: u16, dst: u64, tag: u8 },
    DeleteEdge { src: u64, label: u16, dst: u64 },
    PutVertex { v: u64, tag: u8 },
    /// Compacts one shard on the sharded engines (round-robin by the given
    /// index) and the whole graph on the plain engine.
    CompactShard { idx: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..VERTICES, 0..LABELS, 0..VERTICES, any::<u8>())
            .prop_map(|(src, label, dst, tag)| Op::PutEdge { src, label, dst, tag }),
        (0..VERTICES, 0..LABELS, 0..VERTICES, any::<u8>())
            .prop_map(|(src, label, dst, tag)| Op::PutEdge { src, label, dst, tag }),
        (0..VERTICES, 0..LABELS, 0..VERTICES, any::<u8>())
            .prop_map(|(src, label, dst, tag)| Op::PutEdge { src, label, dst, tag }),
        (0..VERTICES, 0..LABELS, 0..VERTICES)
            .prop_map(|(src, label, dst)| Op::DeleteEdge { src, label, dst }),
        (0..VERTICES, 0..LABELS, 0..VERTICES)
            .prop_map(|(src, label, dst)| Op::DeleteEdge { src, label, dst }),
        (0..VERTICES, any::<u8>()).prop_map(|(v, tag)| Op::PutVertex { v, tag }),
        any::<u8>().prop_map(|idx| Op::CompactShard { idx }),
    ]
}

fn base_options() -> LiveGraphOptions {
    LiveGraphOptions::in_memory()
        .with_capacity(1 << 24)
        .with_max_vertices(1 << 12)
        .with_auto_compaction(false)
        // Keep every version: the equivalence is asserted at every epoch.
        .with_history_retention(1 << 40)
}

/// Uniform driver over both engine types.
enum EngineUnderTest {
    Plain(LiveGraph),
    Sharded(ShardedGraph),
}

type VertexView = (Option<Vec<u8>>, BTreeMap<(u16, u64), Vec<u8>>);

impl EngineUnderTest {
    fn setup(&self) -> Timestamp {
        match self {
            EngineUnderTest::Plain(g) => {
                let mut txn = g.begin_write().unwrap();
                for v in 0..VERTICES {
                    assert_eq!(txn.create_vertex(&[v as u8]).unwrap(), v);
                }
                txn.commit().unwrap()
            }
            EngineUnderTest::Sharded(g) => {
                let mut txn = g.begin_write().unwrap();
                for v in 0..VERTICES {
                    assert_eq!(txn.create_vertex(&[v as u8]).unwrap(), v);
                }
                txn.commit().unwrap()
            }
        }
    }

    /// Applies one op as one committed transaction; returns the commit
    /// epoch (`GRE` if the op was a no-op or a compaction pass).
    fn apply(&self, op: &Op) -> Timestamp {
        match (self, op) {
            (EngineUnderTest::Plain(g), Op::CompactShard { .. }) => {
                g.compact();
                g.stats().read_epoch
            }
            (EngineUnderTest::Sharded(g), Op::CompactShard { idx }) => {
                let shard = *idx as usize % g.shard_count();
                g.shards()[shard].compact();
                g.stats().read_epoch
            }
            (EngineUnderTest::Plain(g), op) => {
                let mut txn = g.begin_write().unwrap();
                match op {
                    Op::PutEdge { src, label, dst, tag } => {
                        txn.put_edge(*src, *label, *dst, &[*tag]).unwrap();
                    }
                    Op::DeleteEdge { src, label, dst } => {
                        txn.delete_edge(*src, *label, *dst).unwrap();
                    }
                    Op::PutVertex { v, tag } => txn.put_vertex(*v, &[*tag]).unwrap(),
                    Op::CompactShard { .. } => unreachable!(),
                }
                txn.commit().unwrap()
            }
            (EngineUnderTest::Sharded(g), op) => {
                let mut txn = g.begin_write().unwrap();
                match op {
                    Op::PutEdge { src, label, dst, tag } => {
                        txn.put_edge(*src, *label, *dst, &[*tag]).unwrap();
                    }
                    Op::DeleteEdge { src, label, dst } => {
                        txn.delete_edge(*src, *label, *dst).unwrap();
                    }
                    Op::PutVertex { v, tag } => txn.put_vertex(*v, &[*tag]).unwrap(),
                    Op::CompactShard { .. } => unreachable!(),
                }
                txn.commit().unwrap()
            }
        }
    }

    fn gre(&self) -> Timestamp {
        match self {
            EngineUnderTest::Plain(g) => g.stats().read_epoch,
            EngineUnderTest::Sharded(g) => g.stats().read_epoch,
        }
    }

    /// Full snapshot at `epoch`: vertex payloads plus `(label, dst) →
    /// payload` adjacency, with degrees cross-checked against the scans.
    fn snapshot_at(&self, epoch: Timestamp) -> BTreeMap<u64, VertexView> {
        let mut out = BTreeMap::new();
        match self {
            EngineUnderTest::Plain(g) => {
                let read = g.begin_read_at(epoch).unwrap();
                for v in 0..VERTICES {
                    let mut adj = BTreeMap::new();
                    for label in 0..LABELS {
                        for e in read.edges(v, label) {
                            adj.insert((label, e.dst), e.properties.to_vec());
                        }
                        assert_eq!(
                            read.degree(v, label),
                            adj.iter().filter(|((l, _), _)| *l == label).count()
                        );
                    }
                    out.insert(v, (read.get_vertex(v).map(|p| p.to_vec()), adj));
                }
            }
            EngineUnderTest::Sharded(g) => {
                let read = g.begin_read_at(epoch).unwrap();
                for v in 0..VERTICES {
                    let mut adj = BTreeMap::new();
                    for label in 0..LABELS {
                        for e in read.edges(v, label) {
                            adj.insert((label, e.dst), e.properties.to_vec());
                        }
                        assert_eq!(
                            read.degree(v, label),
                            adj.iter().filter(|((l, _), _)| *l == label).count()
                        );
                    }
                    out.insert(v, (read.get_vertex(v).map(|p| p.to_vec()), adj));
                }
            }
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn sharded_graphs_match_the_plain_engine_at_every_epoch(
        ops in proptest::collection::vec(op_strategy(), 1..48)
    ) {
        let plain = EngineUnderTest::Plain(LiveGraph::open(base_options()).unwrap());
        let mut engines = vec![plain];
        for &n in &SHARD_COUNTS {
            engines.push(EngineUnderTest::Sharded(
                ShardedGraph::open(ShardedGraphOptions::in_memory(n).with_base(base_options()))
                    .unwrap(),
            ));
        }

        // Same setup transaction everywhere: epochs start in lockstep.
        let setup_epochs: Vec<Timestamp> = engines.iter().map(|e| e.setup()).collect();
        for (i, &e) in setup_epochs.iter().enumerate() {
            prop_assert_eq!(e, setup_epochs[0], "engine {} setup epoch diverged", i);
        }

        // Apply each op as one committed transaction on every engine; the
        // engines must consume epochs in lockstep (same group structure).
        for op in &ops {
            let epochs: Vec<Timestamp> = engines.iter().map(|e| e.apply(op)).collect();
            for (i, &e) in epochs.iter().enumerate() {
                prop_assert_eq!(e, epochs[0], "engine {} commit epoch diverged", i);
            }
        }

        // Every epoch of the shared history must look identical everywhere.
        let gre = engines[0].gre();
        for (i, engine) in engines.iter().enumerate().skip(1) {
            prop_assert_eq!(engine.gre(), gre, "engine {} final GRE diverged", i);
        }
        for epoch in setup_epochs[0]..=gre {
            let reference = engines[0].snapshot_at(epoch);
            for (i, engine) in engines.iter().enumerate().skip(1) {
                prop_assert_eq!(
                    &engine.snapshot_at(epoch),
                    &reference,
                    "engine {} diverged at epoch {}",
                    i,
                    epoch
                );
            }
        }
    }
}
