//! Model-based concurrency oracle.
//!
//! Concurrent writer threads run randomized transactions against a real
//! engine and record every *committed* transaction's operations together
//! with its write epoch. Afterwards the committed log is replayed, in epoch
//! order, into a trivially correct single-threaded `BTreeMap` model; at
//! every commit epoch the engine's time-travel snapshot
//! (`begin_read_at(epoch)`) must agree with the model exactly — vertex
//! payloads, per-label neighbour sets with edge payloads, degrees, and the
//! set of labels carrying visible edges.
//!
//! Because commit epochs are the engine's serialization order under
//! snapshot isolation, this is an end-to-end check that the concurrent
//! history is equivalent to the serial epoch-order history — a far stronger
//! oracle than the coarse invariants in `stress_concurrent.rs`. It runs
//! against both the plain [`LiveGraph`] engine and the sharded multi-writer
//! engine ([`ShardedGraph`]), whose cross-shard commit handshake must make
//! multi-shard transactions visible atomically at one epoch.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use livegraph::core::{
    GroupCommitConfig, LiveGraph, LiveGraphOptions, ShardedGraph, ShardedGraphOptions, SyncMode,
    Timestamp,
};

const VERTICES: u64 = 24;
const LABELS: u16 = 2;
const WRITERS: usize = 4;
const TXNS_PER_WRITER: usize = 150; // 600 committed transactions ≥ 500

/// One logical operation of a test transaction.
#[derive(Debug, Clone)]
enum TestOp {
    PutEdge(u64, u16, u64, Vec<u8>),
    DeleteEdge(u64, u16, u64),
    PutVertex(u64, Vec<u8>),
}

/// What a snapshot of the world looks like, for both the model and the
/// engine: per vertex, the visible payload and the per-label adjacency map
/// (destination → edge payload).
type VertexView = (Option<Vec<u8>>, BTreeMap<u16, BTreeMap<u64, Vec<u8>>>);
type Snapshot = BTreeMap<u64, VertexView>;

/// The single-threaded reference model.
#[derive(Default)]
struct Model {
    vertices: BTreeMap<u64, Vec<u8>>,
    edges: BTreeMap<(u64, u16), BTreeMap<u64, Vec<u8>>>,
}

impl Model {
    fn apply(&mut self, ops: &[TestOp]) {
        for op in ops {
            match op {
                TestOp::PutEdge(src, label, dst, payload) => {
                    self.edges
                        .entry((*src, *label))
                        .or_default()
                        .insert(*dst, payload.clone());
                }
                TestOp::DeleteEdge(src, label, dst) => {
                    if let Some(adj) = self.edges.get_mut(&(*src, *label)) {
                        adj.remove(dst);
                    }
                }
                TestOp::PutVertex(v, payload) => {
                    self.vertices.insert(*v, payload.clone());
                }
            }
        }
    }

    fn snapshot(&self) -> Snapshot {
        let mut out = Snapshot::new();
        for v in 0..VERTICES {
            let mut adj: BTreeMap<u16, BTreeMap<u64, Vec<u8>>> = BTreeMap::new();
            for label in 0..LABELS {
                if let Some(edges) = self.edges.get(&(v, label)) {
                    if !edges.is_empty() {
                        adj.insert(label, edges.clone());
                    }
                }
            }
            out.insert(v, (self.vertices.get(&v).cloned(), adj));
        }
        out
    }
}

/// The engine surface the oracle drives — implemented for both engines.
trait Engine: Send + Sync {
    /// Creates vertices `0..VERTICES`; returns the setup commit epoch.
    fn setup(&self) -> Timestamp;
    /// Attempts one transaction; `Ok((epoch, effective_ops))` on commit,
    /// `Err(())` on a write-write conflict (the caller retries the same
    /// operation list). `effective_ops` keeps only the operations the
    /// engine actually performed — a `DeleteEdge` of an absent edge buffers
    /// nothing and must not reach the model either: the engine assigns such
    /// a transaction no real epoch (an all-no-op "commit" just reports the
    /// current GRE), and replaying the phantom delete at a sorted epoch
    /// could remove an edge a concurrent committer had just created.
    fn try_txn(&self, ops: &[TestOp]) -> Result<(Timestamp, Vec<TestOp>), ()>;
    /// The engine's view of the world at `epoch`.
    fn snapshot_at(&self, epoch: Timestamp) -> Snapshot;
    fn compact(&self);
    fn name(&self) -> &'static str;
    /// `(flushed_wal_batches, records_across_batches)` for durable engines,
    /// `None` for in-memory ones. The group-commit oracle variants use this
    /// to pin that multi-transaction batches actually formed.
    fn wal_batching(&self) -> Option<(u64, u64)>;
}

fn engine_snapshot(
    get_vertex: impl Fn(u64) -> Option<Vec<u8>>,
    edges_of: impl Fn(u64, u16) -> BTreeMap<u64, Vec<u8>>,
    degree_of: impl Fn(u64, u16) -> usize,
    labels_of: impl Fn(u64) -> BTreeSet<u16>,
) -> Snapshot {
    let mut out = Snapshot::new();
    for v in 0..VERTICES {
        let mut adj: BTreeMap<u16, BTreeMap<u64, Vec<u8>>> = BTreeMap::new();
        let mut labels_with_edges = BTreeSet::new();
        for label in 0..LABELS {
            let edges = edges_of(v, label);
            // Degrees must agree with the scan on the engine side itself.
            assert_eq!(degree_of(v, label), edges.len(), "degree/scan mismatch");
            if !edges.is_empty() {
                labels_with_edges.insert(label);
                adj.insert(label, edges);
            }
        }
        // The engine's label index, filtered to labels with visible edges,
        // must match the adjacency view (the label index itself also lists
        // labels whose lists are empty at this epoch).
        let listed: BTreeSet<u16> = labels_of(v)
            .into_iter()
            .filter(|&l| degree_of(v, l) > 0)
            .collect();
        assert_eq!(listed, labels_with_edges, "label set mismatch for vertex {v}");
        out.insert(v, (get_vertex(v), adj));
    }
    out
}

struct PlainEngine {
    graph: LiveGraph,
    /// Keeps the data directory alive for durable configurations.
    _dir: Option<tempfile::TempDir>,
}

impl Engine for PlainEngine {
    fn setup(&self) -> Timestamp {
        let mut txn = self.graph.begin_write().unwrap();
        for v in 0..VERTICES {
            assert_eq!(txn.create_vertex(format!("init-{v}").as_bytes()).unwrap(), v);
        }
        txn.commit().unwrap()
    }

    fn try_txn(&self, ops: &[TestOp]) -> Result<(Timestamp, Vec<TestOp>), ()> {
        let mut txn = self.graph.begin_write().unwrap();
        let mut effective = Vec::with_capacity(ops.len());
        for op in ops {
            let r = match op {
                TestOp::PutEdge(s, l, d, p) => txn.put_edge(*s, *l, *d, p).map(|_| true),
                TestOp::DeleteEdge(s, l, d) => txn.delete_edge(*s, *l, *d),
                TestOp::PutVertex(v, p) => txn.put_vertex(*v, p).map(|()| true),
            };
            match r {
                Ok(true) => effective.push(op.clone()),
                Ok(false) => {} // no-op delete: nothing buffered, nothing modelled
                Err(_) => return Err(()),
            }
        }
        let epoch = txn.commit().map_err(|_| ())?;
        Ok((epoch, effective))
    }

    fn snapshot_at(&self, epoch: Timestamp) -> Snapshot {
        let read = self.graph.begin_read_at(epoch).unwrap();
        engine_snapshot(
            |v| read.get_vertex(v).map(|p| p.to_vec()),
            |v, l| read.edges(v, l).map(|e| (e.dst, e.properties.to_vec())).collect(),
            |v, l| read.degree(v, l),
            |v| read.labels(v).collect(),
        )
    }

    fn compact(&self) {
        self.graph.compact();
    }

    fn name(&self) -> &'static str {
        "livegraph"
    }

    fn wal_batching(&self) -> Option<(u64, u64)> {
        self._dir.as_ref()?;
        let s = self.graph.stats();
        Some((s.wal_groups, s.wal_group_records))
    }
}

struct ShardedEngine {
    graph: ShardedGraph,
    /// Keeps the data directory alive for durable configurations.
    _dir: Option<tempfile::TempDir>,
}

impl Engine for ShardedEngine {
    fn setup(&self) -> Timestamp {
        let mut txn = self.graph.begin_write().unwrap();
        for v in 0..VERTICES {
            assert_eq!(txn.create_vertex(format!("init-{v}").as_bytes()).unwrap(), v);
        }
        txn.commit().unwrap()
    }

    fn try_txn(&self, ops: &[TestOp]) -> Result<(Timestamp, Vec<TestOp>), ()> {
        let mut txn = self.graph.begin_write().unwrap();
        let mut effective = Vec::with_capacity(ops.len());
        for op in ops {
            let r = match op {
                TestOp::PutEdge(s, l, d, p) => txn.put_edge(*s, *l, *d, p).map(|_| true),
                TestOp::DeleteEdge(s, l, d) => txn.delete_edge(*s, *l, *d),
                TestOp::PutVertex(v, p) => txn.put_vertex(*v, p).map(|()| true),
            };
            match r {
                Ok(true) => effective.push(op.clone()),
                Ok(false) => {} // no-op delete: nothing buffered, nothing modelled
                Err(_) => return Err(()),
            }
        }
        let epoch = txn.commit().map_err(|_| ())?;
        Ok((epoch, effective))
    }

    fn snapshot_at(&self, epoch: Timestamp) -> Snapshot {
        let read = self.graph.begin_read_at(epoch).unwrap();
        engine_snapshot(
            |v| read.get_vertex(v).map(|p| p.to_vec()),
            |v, l| read.edges(v, l).map(|e| (e.dst, e.properties.to_vec())).collect(),
            |v, l| read.degree(v, l),
            |v| read.labels(v).collect(),
        )
    }

    fn compact(&self) {
        self.graph.compact();
    }

    fn name(&self) -> &'static str {
        "sharded"
    }

    fn wal_batching(&self) -> Option<(u64, u64)> {
        self._dir.as_ref()?;
        let s = self.graph.stats();
        Some((s.wal_groups(), s.wal_group_records()))
    }
}

/// Deterministic per-writer op generation (splitmix-style).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn random_txn(rng: &mut Rng, writer: usize, seq: usize) -> Vec<TestOp> {
    let ops = 1 + (rng.next() % 3) as usize;
    let mut out = Vec::with_capacity(ops);
    for k in 0..ops {
        let src = rng.next() % VERTICES;
        let dst = rng.next() % VERTICES;
        let label = (rng.next() % LABELS as u64) as u16;
        match rng.next() % 10 {
            0..=5 => out.push(TestOp::PutEdge(
                src,
                label,
                dst,
                format!("w{writer}t{seq}k{k}").into_bytes(),
            )),
            6..=7 => out.push(TestOp::DeleteEdge(src, label, dst)),
            _ => out.push(TestOp::PutVertex(
                src,
                format!("v-w{writer}t{seq}k{k}").into_bytes(),
            )),
        }
    }
    out
}

/// Runs the concurrent workload and checks every epoch snapshot against the
/// model.
fn run_oracle(engine: Arc<dyn Engine>) {
    let setup_epoch = engine.setup();
    type CommitLog = Vec<(Timestamp, Vec<TestOp>)>;
    let log: Arc<Mutex<CommitLog>> = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let engine = Arc::clone(&engine);
            let log = Arc::clone(&log);
            scope.spawn(move || {
                let mut rng = Rng(0xC0FFEE ^ (writer as u64) << 32);
                for seq in 0..TXNS_PER_WRITER {
                    let ops = random_txn(&mut rng, writer, seq);
                    let mut attempts = 0;
                    let (epoch, effective) = loop {
                        match engine.try_txn(&ops) {
                            Ok(committed) => break committed,
                            Err(()) => {
                                attempts += 1;
                                assert!(attempts < 100_000, "writer {writer} livelocked");
                                std::thread::yield_now();
                            }
                        }
                    };
                    // All-no-op transactions consume no epoch (commit just
                    // reports the current GRE) and leave the graph
                    // untouched; they have no place in the serial history.
                    if !effective.is_empty() {
                        log.lock().unwrap().push((epoch, effective));
                    }
                }
            });
        }
        // Background compaction must never change what any epoch can see
        // (history retention keeps every version).
        let engine = Arc::clone(&engine);
        scope.spawn(move || {
            for _ in 0..20 {
                engine.compact();
                std::thread::yield_now();
            }
        });
    });

    let mut log = Arc::try_unwrap(log)
        .map_err(|_| ())
        .unwrap()
        .into_inner()
        .unwrap();
    assert!(
        log.len() >= 500,
        "oracle needs ≥ 500 effective transactions, got {}",
        log.len()
    );
    log.sort_by_key(|(epoch, _)| *epoch);
    assert!(
        log.first().unwrap().0 > setup_epoch,
        "writer commits must be serialized after the setup epoch"
    );

    // Replay into the model in epoch order; verify at every epoch boundary.
    let mut model = Model::default();
    for v in 0..VERTICES {
        model.vertices.insert(v, format!("init-{v}").into_bytes());
    }
    assert_eq!(
        engine.snapshot_at(setup_epoch),
        model.snapshot(),
        "{}: setup snapshot diverged",
        engine.name()
    );

    let mut checked_epochs = 0usize;
    let mut i = 0;
    while i < log.len() {
        let epoch = log[i].0;
        // Apply every transaction of this (group-commit) epoch, then check.
        while i < log.len() && log[i].0 == epoch {
            model.apply(&log[i].1);
            i += 1;
        }
        let engine_view = engine.snapshot_at(epoch);
        let model_view = model.snapshot();
        assert_eq!(
            engine_view,
            model_view,
            "{}: snapshot at epoch {epoch} diverged from the model",
            engine.name()
        );
        checked_epochs += 1;
    }
    assert!(checked_epochs > 0);
    // Durable group-commit variants: batching must have actually happened,
    // otherwise this run pinned nothing about epoch visibility under
    // multi-transaction WAL batches.
    if let Some((groups, records)) = engine.wal_batching() {
        assert!(
            records > groups,
            "{}: {} records in {} flushed batches — group commit never \
             batched more than one transaction",
            engine.name(),
            records,
            groups
        );
    }
    println!(
        "{}: verified {} committed txns across {} epochs",
        engine.name(),
        log.len(),
        checked_epochs
    );
}

fn plain_engine() -> Arc<dyn Engine> {
    Arc::new(PlainEngine {
        graph: LiveGraph::open(
            LiveGraphOptions::in_memory()
                .with_capacity(1 << 26)
                .with_max_vertices(1 << 12)
                .with_auto_compaction(false)
                // Keep every version so the oracle can time-travel to any
                // commit epoch after the run.
                .with_history_retention(1 << 40),
        )
        .unwrap(),
        _dir: None,
    })
}

fn sharded_engine(shards: usize) -> Arc<dyn Engine> {
    Arc::new(ShardedEngine {
        graph: ShardedGraph::open(
            ShardedGraphOptions::in_memory(shards).with_base(
                LiveGraphOptions::in_memory()
                    .with_capacity(1 << 24)
                    .with_max_vertices(1 << 12)
                    .with_auto_compaction(false)
                    .with_history_retention(1 << 40),
            ),
        )
        .unwrap(),
        _dir: None,
    })
}

/// Group-commit tuning for the durable oracle variants: a simulated flush
/// latency gives concurrent committers a window to pile into each other's
/// batches, and `max_batch > 1` lets the flush leader take them all.
fn grouped() -> (SyncMode, GroupCommitConfig) {
    (
        SyncMode::Simulated(std::time::Duration::from_micros(100)),
        GroupCommitConfig::default()
            .with_max_batch(8)
            .with_max_wait(std::time::Duration::from_micros(100)),
    )
}

fn durable_plain_engine_grouped() -> Arc<dyn Engine> {
    let dir = tempfile::tempdir().unwrap();
    let (sync, group_commit) = grouped();
    Arc::new(PlainEngine {
        graph: LiveGraph::open(
            LiveGraphOptions::durable(dir.path())
                .with_capacity(1 << 26)
                .with_max_vertices(1 << 12)
                .with_auto_compaction(false)
                .with_history_retention(1 << 40)
                .with_sync_mode(sync)
                .with_group_commit(group_commit),
        )
        .unwrap(),
        _dir: Some(dir),
    })
}

fn durable_sharded_engine_grouped(shards: usize) -> Arc<dyn Engine> {
    let dir = tempfile::tempdir().unwrap();
    let (sync, group_commit) = grouped();
    Arc::new(ShardedEngine {
        graph: ShardedGraph::open(
            ShardedGraphOptions::durable(shards, dir.path()).with_base(
                LiveGraphOptions::durable(dir.path())
                    .with_capacity(1 << 24)
                    .with_max_vertices(1 << 12)
                    .with_auto_compaction(false)
                    .with_history_retention(1 << 40)
                    .with_sync_mode(sync)
                    .with_group_commit(group_commit),
            ),
        )
        .unwrap(),
        _dir: Some(dir),
    })
}

#[test]
fn concurrent_history_matches_serial_epoch_order_on_livegraph() {
    run_oracle(plain_engine());
}

#[test]
fn concurrent_history_matches_serial_epoch_order_on_sharded_graph() {
    run_oracle(sharded_engine(3));
}

#[test]
fn group_commit_batches_never_reorder_epoch_visibility_on_livegraph() {
    run_oracle(durable_plain_engine_grouped());
}

#[test]
fn group_commit_batches_never_reorder_epoch_visibility_on_sharded_graph() {
    run_oracle(durable_sharded_engine_grouped(3));
}
