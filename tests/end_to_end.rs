//! End-to-end integration tests spanning all crates: workload drivers over
//! the engine, analytics on live snapshots, durability across restarts, and
//! cross-checks between LiveGraph and the baseline stores.

use std::collections::HashSet;
use std::sync::Arc;

use livegraph::analytics::{connected_components, pagerank, snapshot_to_csr, LiveSnapshot, PageRankOptions};
use livegraph::baselines::{AdjacencyStore, BTreeEdgeStore};
use livegraph::core::{LiveGraph, LiveGraphOptions, SyncMode, DEFAULT_LABEL};
use livegraph::workloads::kronecker::{generate_kronecker, KroneckerConfig};
use livegraph::workloads::snb::{generate_snb, EdgeTableSnb, LiveGraphSnb, SnbBackend, SnbConfig};
use livegraph::workloads::{load_base_graph, run_workload, DriverConfig, LiveGraphBackend, OpMix};

fn graph(max_vertices: usize) -> LiveGraph {
    LiveGraph::open(
        LiveGraphOptions::in_memory()
            .with_capacity(1 << 26)
            .with_max_vertices(max_vertices),
    )
    .unwrap()
}

#[test]
fn kronecker_graph_roundtrips_through_livegraph_and_btree() {
    let config = KroneckerConfig::new(10);
    let edges = generate_kronecker(&config);
    let n = config.num_vertices();

    let g = graph(n as usize * 2);
    let mut txn = g.begin_write().unwrap();
    txn.create_vertex_with_id(n - 1, b"").unwrap();
    txn.commit().unwrap();
    let mut btree = BTreeEdgeStore::new();
    for chunk in edges.chunks(4096) {
        let mut txn = g.begin_write().unwrap();
        for &(s, d) in chunk {
            txn.put_edge(s, DEFAULT_LABEL, d, b"").unwrap();
            btree.insert_edge(s, d);
        }
        txn.commit().unwrap();
    }

    // Both stores must agree on every adjacency list (sets: LiveGraph
    // upserts duplicates, the B-tree key space deduplicates them too).
    let read = g.begin_read().unwrap();
    for v in (0..n).step_by(17) {
        let live: HashSet<u64> = read.edges(v, DEFAULT_LABEL).map(|e| e.dst).collect();
        let mut base = HashSet::new();
        btree.scan_neighbors(v, &mut |d| {
            base.insert(d);
        });
        assert_eq!(live, base, "adjacency of vertex {v}");
    }
}

#[test]
fn linkbench_driver_preserves_engine_invariants() {
    let backend = Arc::new(LiveGraphBackend::new(graph(1 << 14)));
    load_base_graph(backend.as_ref(), 500, 3, 5);
    let config = DriverConfig {
        clients: 4,
        ops_per_client: 2_000,
        mix: OpMix::dflt(),
        num_vertices: 500,
        zipf_exponent: 0.8,
        think_time: None,
        link_list_limit: 100,
        seed: 9,
        write_partitions: None,
    };
    let report = run_workload(backend.clone(), &config);
    assert_eq!(report.total_ops, 8_000);
    assert!(report.throughput() > 0.0);

    // After the mixed read/write run the engine must still be consistent:
    // a full compaction pass and a fresh scan of every vertex must succeed.
    backend.graph().compact();
    backend.graph().compact();
    let read = backend.graph().begin_read().unwrap();
    let mut total_edges = 0usize;
    for v in 0..read.vertex_count() {
        total_edges += read.degree(v, DEFAULT_LABEL);
    }
    assert!(total_edges > 0);
}

#[test]
fn analytics_agree_between_in_situ_and_etl_paths() {
    let config = KroneckerConfig::new(9);
    let edges = generate_kronecker(&config);
    let n = config.num_vertices();
    let g = graph(n as usize * 2);
    let mut txn = g.begin_write().unwrap();
    txn.create_vertex_with_id(n - 1, b"").unwrap();
    for &(s, d) in &edges {
        txn.put_edge(s, DEFAULT_LABEL, d, b"").unwrap();
    }
    txn.commit().unwrap();

    let read = g.begin_read().unwrap();
    let snapshot = LiveSnapshot::new(&read, DEFAULT_LABEL);
    let csr = snapshot_to_csr(&snapshot);

    let pr_live = pagerank(&snapshot, PageRankOptions { iterations: 10, damping: 0.85, threads: 2 });
    let pr_csr = pagerank(&csr, PageRankOptions { iterations: 10, damping: 0.85, threads: 2 });
    for (a, b) in pr_live.iter().zip(&pr_csr) {
        assert!((a - b).abs() < 1e-9);
    }
    assert_eq!(connected_components(&snapshot, 2), connected_components(&csr, 2));
}

#[test]
fn snb_backends_agree_after_updates() {
    let dataset = generate_snb(SnbConfig {
        persons: 80,
        avg_friends: 8,
        posts_per_person: 3,
        likes_per_person: 2,
        seed: 3,
    });
    let lg = LiveGraphSnb::new(graph(1 << 14));
    lg.load(&dataset);
    let et = EdgeTableSnb::new();
    et.load(&dataset);

    // Apply the same updates to both backends.
    lg.update_add_friendship(1, 2);
    et.update_add_friendship(1, 2);
    let post_lg = lg.update_add_post(5, "same content");
    let post_et = et.update_add_post(5, "same content");
    assert_eq!(post_lg, post_et, "post ids must line up across backends");

    for person in [0u64, 1, 5, 33] {
        assert_eq!(
            lg.short2_recent_posts(person, 5),
            et.short2_recent_posts(person, 5)
        );
        assert_eq!(
            lg.complex1_friends_of_friends(person, "Ada"),
            et.complex1_friends_of_friends(person, "Ada")
        );
    }
    assert_eq!(lg.complex13_shortest_path(1, 2), Some(1));
    assert_eq!(et.complex13_shortest_path(1, 2), Some(1));
}

#[test]
fn durable_graph_survives_restart_mid_workload() {
    let dir = tempfile::tempdir().unwrap();
    let options = || {
        LiveGraphOptions::durable(dir.path())
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 12)
            .with_sync_mode(SyncMode::NoSync)
    };
    let hub;
    let expected_edges;
    {
        let g = LiveGraph::open(options()).unwrap();
        let mut txn = g.begin_write().unwrap();
        hub = txn.create_vertex(b"hub").unwrap();
        for i in 0..50u64 {
            let v = txn.create_vertex(format!("{i}").as_bytes()).unwrap();
            txn.put_edge(hub, DEFAULT_LABEL, v, b"").unwrap();
        }
        txn.commit().unwrap();
        g.checkpoint().unwrap();
        // More work after the checkpoint, including deletes.
        let mut txn = g.begin_write().unwrap();
        for i in 1..=10u64 {
            txn.delete_edge(hub, DEFAULT_LABEL, hub + i).unwrap();
        }
        txn.commit().unwrap();
        expected_edges = g.begin_read().unwrap().degree(hub, DEFAULT_LABEL);
    }
    let g = LiveGraph::open(options()).unwrap();
    let read = g.begin_read().unwrap();
    assert_eq!(read.degree(hub, DEFAULT_LABEL), expected_edges);
    assert_eq!(read.get_vertex(hub), Some(&b"hub"[..]));
}
