//! `MetricsDump` over the wire ≡ the engine-side registry.
//!
//! The `livegraph-top` dashboard and the Prometheus endpoint are only as
//! trustworthy as the wire dump they render, so these tests run a known
//! op mix against an in-process server, quiesce it, and compare the
//! `MetricsDump` reply series-for-series against `Engine::metrics()` on
//! the very same engine instance. The single tolerated divergence is
//! `livegraph_request_seconds`: a dump cannot include its *own* request
//! (the span closes only after the reply bytes are written), so the
//! engine-side count may exceed the wire count by the requests that
//! completed in between — never the reverse.

use std::sync::Arc;

use livegraph::core::DEFAULT_LABEL;
use livegraph::server::{render_exposition, Client, Engine, Server, ServerConfig};

const TXNS: u64 = 12;

fn start_plain() -> (Arc<Engine>, Server) {
    let graph = livegraph::core::LiveGraph::open(
        livegraph::core::LiveGraphOptions::in_memory()
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 12),
    )
    .unwrap();
    let engine = Arc::new(Engine::Plain(graph));
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2),
    )
    .unwrap();
    (engine, server)
}

/// The known mix: `TXNS` explicit write transactions (two vertices plus an
/// edge each) and one adjacency read per transaction.
fn run_known_mix(client: &mut Client) {
    for i in 0..TXNS {
        let txn = client.begin_write().unwrap();
        let a = client.create_vertex(txn, format!("a{i}").as_bytes()).unwrap();
        let b = client.create_vertex(txn, format!("b{i}").as_bytes()).unwrap();
        client.put_edge(Some(txn), a, DEFAULT_LABEL, b, b"e").unwrap();
        client.commit(txn).unwrap();
        assert_eq!(client.neighbors(None, a, DEFAULT_LABEL, 0).unwrap(), vec![b]);
    }
}

fn sorted<T: Ord + Clone>(xs: &[T]) -> Vec<T> {
    let mut xs = xs.to_vec();
    xs.sort();
    xs
}

#[test]
fn metrics_dump_matches_engine_registry_when_quiesced() {
    let (engine, server) = start_plain();
    let mut client = Client::connect(server.local_addr()).unwrap();
    run_known_mix(&mut client);

    let dump = client.metrics_dump().unwrap();
    let snap = engine.metrics();

    // Counters and gauges: identical name sets *and* values — nothing
    // commits between the dump and the in-process snapshot.
    let dump_counters = sorted(&dump.counters);
    let dump_gauges = sorted(&dump.gauges);
    assert_eq!(dump_counters, sorted(&snap.counters));
    assert_eq!(dump_gauges, sorted(&snap.gauges));

    // The known mix pins the engine-derived series exactly.
    let counter = |name: &str| {
        dump_counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("dump missing counter {name}"))
            .1
    };
    assert_eq!(counter("livegraph_commits_total"), TXNS);
    assert_eq!(counter("livegraph_vertices_total"), 2 * TXNS);
    assert_eq!(counter("livegraph_edge_inserts_total"), TXNS);

    // Histograms: every series the engine holds crosses the wire, and on
    // a quiesced server all of them agree exactly — except the request
    // latency span, which closes only after each reply is flushed, so
    // the engine side may have observed more requests (never fewer).
    assert_eq!(dump.histograms.len(), snap.histograms.len());
    for wire in &dump.histograms {
        let local = snap
            .histograms
            .iter()
            .find(|h| h.name == wire.name)
            .unwrap_or_else(|| panic!("registry missing histogram {}", wire.name));
        if wire.name == "livegraph_request_seconds" {
            assert!(
                local.count >= wire.count,
                "engine saw fewer requests ({}) than the dump ({})",
                local.count,
                wire.count
            );
            assert!(wire.count >= TXNS, "known mix under-recorded requests");
        } else {
            assert_eq!(wire.count, local.count, "{} count diverged", wire.name);
            assert_eq!(wire.sum, local.sum, "{} sum diverged", wire.name);
            assert_eq!(wire.max, local.max, "{} max diverged", wire.name);
            assert_eq!(wire.buckets, local.buckets, "{} buckets diverged", wire.name);
        }
    }

    // At least one commit span must actually have been traced (the first
    // sample in each worker slot fires immediately), or the dashboard
    // renders an all-zero commit row forever.
    let commit = dump
        .histograms
        .iter()
        .find(|h| h.name == "livegraph_commit_seconds")
        .unwrap();
    assert!(commit.count > 0, "no commit span was sampled");

    drop(client);
    server.shutdown();
}

#[test]
fn exposition_renders_every_wire_series() {
    let (engine, server) = start_plain();
    let mut client = Client::connect(server.local_addr()).unwrap();
    run_known_mix(&mut client);

    let dump = client.metrics_dump().unwrap();
    let text = render_exposition(&engine.metrics());
    for (name, _) in &dump.counters {
        assert!(text.contains(name.as_str()), "exposition missing {name}");
    }
    for (name, _) in &dump.gauges {
        assert!(text.contains(name.as_str()), "exposition missing {name}");
    }
    for h in &dump.histograms {
        assert!(
            text.contains(&format!("{}_count", h.name)),
            "exposition missing {}_count",
            h.name
        );
    }

    drop(client);
    server.shutdown();
}

#[test]
fn sharded_dump_flattens_commit_totals_across_shards() {
    use livegraph::core::{ShardedGraph, ShardedGraphOptions};
    let graph = ShardedGraph::open(ShardedGraphOptions::in_memory(2).with_base(
        livegraph::core::LiveGraphOptions::in_memory()
            .with_capacity(1 << 22)
            .with_max_vertices(1 << 11),
    ))
    .unwrap();
    let engine = Arc::new(Engine::Sharded(graph));
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2),
    )
    .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    run_known_mix(&mut client);

    // The shards share one registry, so the flattened dump reports the
    // full commit count no matter which shards the vertices landed on.
    let dump = client.metrics_dump().unwrap();
    let commits = dump
        .counters
        .iter()
        .find(|(n, _)| n == "livegraph_commits_total")
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(commits, TXNS);

    drop(client);
    server.shutdown();
}
