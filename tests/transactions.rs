//! Cross-crate integration tests: snapshot isolation guarantees of the
//! engine exercised through the facade crate, including the anomaly
//! checklist from the paper's correctness argument (§5).

use livegraph::core::{Error, LiveGraph, LiveGraphOptions, DEFAULT_LABEL};

fn graph() -> LiveGraph {
    LiveGraph::open(
        LiveGraphOptions::in_memory()
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 14),
    )
    .unwrap()
}

#[test]
fn no_dirty_reads() {
    let g = graph();
    let mut setup = g.begin_write().unwrap();
    let a = setup.create_vertex(b"v1").unwrap();
    let b = setup.create_vertex(b"x").unwrap();
    setup.commit().unwrap();

    let mut writer = g.begin_write().unwrap();
    writer.put_vertex(a, b"v2").unwrap();
    writer.put_edge(a, DEFAULT_LABEL, b, b"uncommitted").unwrap();

    // A concurrent reader must not observe any uncommitted state.
    let reader = g.begin_read().unwrap();
    assert_eq!(reader.get_vertex(a), Some(&b"v1"[..]));
    assert_eq!(reader.degree(a, DEFAULT_LABEL), 0);
    writer.abort();
    let reader2 = g.begin_read().unwrap();
    assert_eq!(reader2.get_vertex(a), Some(&b"v1"[..]));
}

#[test]
fn no_read_skew_across_two_objects() {
    let g = graph();
    let mut setup = g.begin_write().unwrap();
    let x = setup.create_vertex(b"x0").unwrap();
    let y = setup.create_vertex(b"y0").unwrap();
    setup.commit().unwrap();

    // Reader observes x before B commits, and y after.
    let reader = g.begin_read().unwrap();
    assert_eq!(reader.get_vertex(x), Some(&b"x0"[..]));

    let mut b_txn = g.begin_write().unwrap();
    b_txn.put_vertex(x, b"x1").unwrap();
    b_txn.put_vertex(y, b"y1").unwrap();
    b_txn.commit().unwrap();

    // Snapshot isolation: the reader must still see y0, never y1.
    assert_eq!(reader.get_vertex(y), Some(&b"y0"[..]));
    // A fresh reader sees both updates.
    let fresh = g.begin_read().unwrap();
    assert_eq!(fresh.get_vertex(x), Some(&b"x1"[..]));
    assert_eq!(fresh.get_vertex(y), Some(&b"y1"[..]));
}

#[test]
fn no_phantom_reads_on_adjacency_predicates() {
    let g = graph();
    let mut setup = g.begin_write().unwrap();
    let hub = setup.create_vertex(b"hub").unwrap();
    let mut spokes = Vec::new();
    for i in 0..10u64 {
        spokes.push(setup.create_vertex(format!("{i}").as_bytes()).unwrap());
    }
    for &s in &spokes[..5] {
        setup.put_edge(hub, DEFAULT_LABEL, s, b"").unwrap();
    }
    setup.commit().unwrap();

    let reader = g.begin_read().unwrap();
    let first: Vec<u64> = reader.edges(hub, DEFAULT_LABEL).map(|e| e.dst).collect();

    // Another transaction inserts and deletes edges satisfying the same
    // "all edges of hub" predicate.
    let mut other = g.begin_write().unwrap();
    other.put_edge(hub, DEFAULT_LABEL, spokes[7], b"").unwrap();
    other.delete_edge(hub, DEFAULT_LABEL, spokes[0]).unwrap();
    other.commit().unwrap();

    let second: Vec<u64> = reader.edges(hub, DEFAULT_LABEL).map(|e| e.dst).collect();
    assert_eq!(first, second, "re-evaluating the predicate must give the same result");
}

#[test]
fn lost_updates_are_prevented_by_first_updater_wins() {
    let g = graph();
    let mut setup = g.begin_write().unwrap();
    let account = setup.create_vertex(b"balance=100").unwrap();
    setup.commit().unwrap();

    let mut t1 = g.begin_write().unwrap();
    let mut t2 = g.begin_write().unwrap();
    t1.put_vertex(account, b"balance=150").unwrap();
    t1.commit().unwrap();
    // t2 started before t1 committed and writes the same vertex: it must
    // observe a write-write conflict rather than silently overwriting.
    let result = t2.put_vertex(account, b"balance=50");
    assert!(matches!(result, Err(Error::WriteConflict { .. })));
}

#[test]
fn write_snapshot_reads_its_own_multi_label_changes() {
    let g = graph();
    let mut txn = g.begin_write().unwrap();
    let a = txn.create_vertex(b"a").unwrap();
    let b = txn.create_vertex(b"b").unwrap();
    txn.put_edge(a, 0, b, b"friend").unwrap();
    txn.put_edge(a, 1, b, b"colleague").unwrap();
    txn.delete_edge(a, 0, b).unwrap();
    assert_eq!(txn.degree(a, 0), 0, "own delete visible");
    assert_eq!(txn.degree(a, 1), 1, "other label untouched");
    txn.commit().unwrap();
    let r = g.begin_read().unwrap();
    assert_eq!(r.degree(a, 0), 0);
    assert_eq!(r.get_edge(a, 1, b), Some(&b"colleague"[..]));
}

#[test]
fn long_running_reader_with_concurrent_writers_and_compaction() {
    let g = graph();
    let mut setup = g.begin_write().unwrap();
    let hub = setup.create_vertex(b"hub").unwrap();
    let mut others = Vec::new();
    for i in 0..100u64 {
        others.push(setup.create_vertex(format!("{i}").as_bytes()).unwrap());
    }
    for &o in &others {
        setup.put_edge(hub, DEFAULT_LABEL, o, b"v1").unwrap();
    }
    setup.commit().unwrap();

    let long_reader = g.begin_read().unwrap();
    // Concurrent churn: update all edges and delete half of them.
    for (i, &o) in others.iter().enumerate() {
        let mut txn = g.begin_write().unwrap();
        if i % 2 == 0 {
            txn.delete_edge(hub, DEFAULT_LABEL, o).unwrap();
        } else {
            txn.put_edge(hub, DEFAULT_LABEL, o, b"v2").unwrap();
        }
        txn.commit().unwrap();
    }
    g.compact();

    // The long-running reader still sees the original 100 edges with v1.
    assert_eq!(long_reader.degree(hub, DEFAULT_LABEL), 100);
    assert_eq!(
        long_reader.get_edge(hub, DEFAULT_LABEL, others[1]),
        Some(&b"v1"[..])
    );
    drop(long_reader);
    g.compact();
    let fresh = g.begin_read().unwrap();
    assert_eq!(fresh.degree(hub, DEFAULT_LABEL), 50);
    assert_eq!(fresh.get_edge(hub, DEFAULT_LABEL, others[1]), Some(&b"v2"[..]));
}
