//! Public-API regression tests for the Bloom-assisted `get_edge` fast path.
//!
//! The TEL-level behaviour (a definite Bloom miss never touches the log) was
//! previously only covered by `tel.rs` unit tests. These tests pin it at the
//! `ReadTxn::get_edge` level through the engine's scan statistics
//! (`GraphStats::scans`), and verify the filter survives the two events that
//! rebuild a TEL block: size-class upgrades and compaction rewrites.

use livegraph::core::{LiveGraph, LiveGraphOptions, ScanStats, DEFAULT_LABEL};

fn graph() -> LiveGraph {
    LiveGraph::open(
        LiveGraphOptions::in_memory()
            .with_capacity(1 << 24)
            .with_max_vertices(1 << 14)
            .with_auto_compaction(false),
    )
    .unwrap()
}

/// Builds a hub with `n` committed out-edges and returns the spoke ids.
fn build_hub(g: &LiveGraph, n: u64) -> (u64, Vec<u64>) {
    let mut txn = g.begin_write().unwrap();
    let hub = txn.create_vertex(b"hub").unwrap();
    let mut spokes = Vec::new();
    for i in 0..n {
        spokes.push(txn.create_vertex(format!("s{i}").as_bytes()).unwrap());
    }
    txn.commit().unwrap();
    // Insert one edge per transaction so the TEL grows through several
    // size-class upgrades (each copy must re-seed the target's Bloom bits).
    for &s in &spokes {
        let mut txn = g.begin_write().unwrap();
        txn.put_edge(hub, DEFAULT_LABEL, s, b"payload").unwrap();
        txn.commit().unwrap();
    }
    (hub, spokes)
}

fn delta(before: ScanStats, after: ScanStats) -> ScanStats {
    ScanStats {
        sealed_scans: after.sealed_scans - before.sealed_scans,
        checked_scans: after.checked_scans - before.checked_scans,
        edge_lookups: after.edge_lookups - before.edge_lookups,
        edge_lookup_entries_scanned: after.edge_lookup_entries_scanned
            - before.edge_lookup_entries_scanned,
        edge_lookup_bloom_negatives: after.edge_lookup_bloom_negatives
            - before.edge_lookup_bloom_negatives,
    }
}

/// Probes `misses` absent destinations and returns the stats delta.
fn probe_misses(g: &LiveGraph, hub: u64, misses: u64) -> ScanStats {
    let before = g.stats().scans;
    let read = g.begin_read().unwrap();
    for absent in 1_000_000..(1_000_000 + misses) {
        assert_eq!(read.get_edge(hub, DEFAULT_LABEL, absent), None);
    }
    drop(read);
    delta(before, g.stats().scans)
}

#[test]
fn get_edge_misses_do_not_scan_the_log() {
    let g = graph();
    let degree = 300u64;
    let (hub, spokes) = build_hub(&g, degree);

    let misses = 256u64;
    let d = probe_misses(&g, hub, misses);
    assert_eq!(d.edge_lookups, misses);
    // The Bloom filter must short-circuit (nearly) all absent keys: a 300
    // entry log in an 16 KiB-class block carries a ~1 KiB filter, so false
    // positives are rare. Without the filter this delta would be
    // `misses * degree` = 76 800 scanned entries.
    assert!(
        d.edge_lookup_bloom_negatives >= misses * 9 / 10,
        "expected >=90% definite Bloom misses, got {} of {misses}",
        d.edge_lookup_bloom_negatives
    );
    assert!(
        d.edge_lookup_entries_scanned <= (misses - d.edge_lookup_bloom_negatives) * degree,
        "only Bloom false positives may scan"
    );
    assert!(
        d.edge_lookup_entries_scanned < misses * degree / 10,
        "misses must not degenerate into full scans: scanned {} entries",
        d.edge_lookup_entries_scanned
    );

    // Hits still resolve (and are allowed to scan).
    let read = g.begin_read().unwrap();
    for &s in &spokes {
        assert_eq!(read.get_edge(hub, DEFAULT_LABEL, s), Some(&b"payload"[..]));
    }
}

#[test]
fn bloom_filter_survives_tel_upgrades() {
    let g = graph();
    // 300 single-edge commits force multiple block upgrades (128 B start).
    let (hub, spokes) = build_hub(&g, 300);
    let stats = g.stats();
    assert!(
        stats.blocks.live_bytes() > 0,
        "sanity: blocks were allocated"
    );

    // After every upgrade, the rebuilt filter still short-circuits misses...
    let d = probe_misses(&g, hub, 200);
    assert!(
        d.edge_lookup_bloom_negatives >= 180,
        "rebuilt Bloom filter lost its bits: only {} definite misses",
        d.edge_lookup_bloom_negatives
    );
    // ...and never rejects a present key (no false negatives, ever).
    let read = g.begin_read().unwrap();
    for &s in &spokes {
        assert!(read.get_edge(hub, DEFAULT_LABEL, s).is_some());
    }
}

#[test]
fn bloom_filter_survives_compaction_rewrites() {
    let g = graph();
    let (hub, spokes) = build_hub(&g, 200);

    // Delete every other edge, then compact twice (retire + free) so the
    // TEL is rewritten into a fresh block with a fresh Bloom filter.
    let mut del = g.begin_write().unwrap();
    for &s in spokes.iter().step_by(2) {
        assert!(del.delete_edge(hub, DEFAULT_LABEL, s).unwrap());
    }
    del.commit().unwrap();
    g.compact();
    g.compact();
    assert!(
        g.stats().compaction.entries_dropped >= 100,
        "sanity: compaction rewrote the TEL"
    );

    // Surviving edges resolve, deleted ones miss, absent keys still hit the
    // Bloom fast path in the rewritten block.
    let read = g.begin_read().unwrap();
    for (i, &s) in spokes.iter().enumerate() {
        let found = read.get_edge(hub, DEFAULT_LABEL, s).is_some();
        assert_eq!(found, i % 2 == 1, "edge {i} after compaction");
    }
    drop(read);
    let d = probe_misses(&g, hub, 200);
    assert!(
        d.edge_lookup_bloom_negatives >= 180,
        "compacted Bloom filter lost its bits: only {} definite misses",
        d.edge_lookup_bloom_negatives
    );

    // The compacted TEL re-sealed: dead versions are gone, so neighbourhood
    // scans take the zero-check path again.
    let before = g.stats().scans;
    let read = g.begin_read().unwrap();
    let mut n = 0;
    read.for_each_neighbor(hub, DEFAULT_LABEL, |_| n += 1);
    assert_eq!(n, 100);
    let after = g.stats().scans;
    assert_eq!(
        after.sealed_scans,
        before.sealed_scans + 1,
        "fully compacted TEL must regain the sealed fast path"
    );
}
