//! Smoke test for the documented front door.
//!
//! Exercises exactly the path the README quickstart and
//! `examples/quickstart.rs` advertise — open → write transaction →
//! `put_edge` → commit → read degree — so CI proves the documentation's
//! first-contact experience keeps working.

use livegraph::core::{LiveGraph, LiveGraphOptions, DEFAULT_LABEL};

#[test]
fn quickstart_open_write_commit_read_degree() {
    let graph = LiveGraph::open(LiveGraphOptions::in_memory()).unwrap();

    let mut txn = graph.begin_write().unwrap();
    let alice = txn.create_vertex(b"{\"name\":\"alice\"}").unwrap();
    let bob = txn.create_vertex(b"{\"name\":\"bob\"}").unwrap();
    let carol = txn.create_vertex(b"{\"name\":\"carol\"}").unwrap();
    txn.put_edge(alice, DEFAULT_LABEL, bob, b"{\"since\":2019}").unwrap();
    txn.put_edge(alice, DEFAULT_LABEL, carol, b"{\"since\":2021}").unwrap();
    txn.put_edge(bob, DEFAULT_LABEL, carol, b"{\"since\":2022}").unwrap();
    txn.commit().unwrap();

    let read = graph.begin_read().unwrap();
    assert_eq!(read.degree(alice, DEFAULT_LABEL), 2);
    assert_eq!(read.degree(bob, DEFAULT_LABEL), 1);
    assert_eq!(read.degree(carol, DEFAULT_LABEL), 0);
    assert_eq!(
        read.get_vertex(alice).map(<[u8]>::to_vec),
        Some(b"{\"name\":\"alice\"}".to_vec())
    );

    // The adjacency scan sees both edges with their payloads.
    let mut neighbours: Vec<(u64, Vec<u8>)> = read
        .edges(alice, DEFAULT_LABEL)
        .map(|e| (e.dst, e.properties.to_vec()))
        .collect();
    neighbours.sort();
    assert_eq!(
        neighbours,
        vec![
            (bob, b"{\"since\":2019}".to_vec()),
            (carol, b"{\"since\":2021}".to_vec()),
        ]
    );

    // Snapshot isolation, exactly as the quickstart demonstrates: a pinned
    // snapshot keeps its view while later commits move the fresh view.
    let mut update = graph.begin_write().unwrap();
    update.delete_edge(alice, DEFAULT_LABEL, bob).unwrap();
    update.commit().unwrap();
    assert_eq!(read.degree(alice, DEFAULT_LABEL), 2, "pinned snapshot moved");
    assert_eq!(
        graph.begin_read().unwrap().degree(alice, DEFAULT_LABEL),
        1,
        "fresh snapshot missed the committed delete"
    );
}
