//! End-to-end replication tests: divergence oracle, chaos injection,
//! bounded bootstrap, and failover.
//!
//! The primary and its replicas run in-process so every test can hold
//! direct engine handles on both sides: the divergence oracle compares
//! `begin_read_at(epoch)` snapshots on the *actual* graphs, not a second
//! client's view, for every epoch the primary ever shipped. Chaos tests
//! route the replication link through `FaultProxy` (delay / refuse /
//! truncate-mid-frame / disconnect) and assert the oracle still holds after
//! convergence — the replica may fall behind, but it must never diverge.

use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use livegraph::core::{LiveGraph, LiveGraphOptions, SyncMode, DEFAULT_LABEL};
use livegraph::server::{
    bootstrap_replica, start_replica, Client, ClientError, Engine, ErrorCode, FaultProxy,
    ReplicaOptions, ReplicaRunner, ReplicationState, Server, ServerConfig,
};

fn durable_options(dir: &Path) -> LiveGraphOptions {
    LiveGraphOptions::durable(dir)
        .with_capacity(1 << 24)
        .with_max_vertices(1 << 12)
        .with_sync_mode(SyncMode::NoSync)
        // Retain all history so the oracle can re-read every shipped epoch.
        .with_history_retention(1 << 40)
        .with_auto_compaction(false)
}

fn open_engine(dir: &Path) -> Arc<Engine> {
    Arc::new(Engine::Plain(LiveGraph::open(durable_options(dir)).unwrap()))
}

/// Fast-reconnect options so chaos tests converge quickly.
fn fast_opts() -> ReplicaOptions {
    ReplicaOptions {
        io_timeout: Duration::from_secs(2),
        min_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
        ..ReplicaOptions::default()
    }
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Commits `n` transactions on `graph`, each creating a vertex pair plus an
/// edge; transaction `i` also overwrites vertex 0's properties so the
/// oracle sees version churn, not just inserts.
fn write_epochs(graph: &LiveGraph, n: usize) {
    for i in 0..n {
        let mut txn = graph.begin_write().unwrap();
        let a = txn.create_vertex(format!("a{i}").as_bytes()).unwrap();
        let b = txn.create_vertex(format!("b{i}").as_bytes()).unwrap();
        txn.put_edge(a, DEFAULT_LABEL, b, format!("e{i}").as_bytes()).unwrap();
        if a > 0 {
            txn.put_vertex(0, format!("gen{i}").as_bytes()).unwrap();
        }
        txn.commit().unwrap();
    }
}

/// One vertex's visible state: properties plus `(dst, edge properties)`
/// adjacency in scan order.
type VertexState = (u64, Option<Vec<u8>>, Vec<(u64, Vec<u8>)>);

/// The full visible state of `graph` at `epoch`.
fn snapshot_at(graph: &LiveGraph, epoch: i64) -> Vec<VertexState> {
    let read = graph.begin_read_at(epoch).unwrap();
    (0..graph.vertex_count())
        .map(|v| {
            let props = read.get_vertex(v).map(|p| p.to_vec());
            let dsts = read
                .edges(v, DEFAULT_LABEL)
                .map(|e| (e.dst, e.properties.to_vec()))
                .collect();
            (v, props, dsts)
        })
        .collect()
}

/// The divergence oracle: for every epoch in `[from, to]`, the replica's
/// snapshot must equal the primary's snapshot at that same epoch.
fn assert_no_divergence(primary: &LiveGraph, replica: &LiveGraph, from: i64, to: i64) {
    assert!(from <= to, "oracle range empty: {from}..={to}");
    for epoch in from..=to {
        assert_eq!(
            snapshot_at(primary, epoch),
            snapshot_at(replica, epoch),
            "replica diverged from primary at epoch {epoch}"
        );
    }
}

fn replica_gre(engine: &Engine) -> i64 {
    engine.as_plain().unwrap().stats().read_epoch
}

// ---------------------------------------------------------------------------
// Fault-free streaming
// ---------------------------------------------------------------------------

#[test]
fn replica_matches_primary_at_every_epoch() {
    let p_dir = tempfile::tempdir().unwrap();
    let r_dir = tempfile::tempdir().unwrap();
    let primary = open_engine(p_dir.path());
    let server = Server::start(Arc::clone(&primary), "127.0.0.1:0", ServerConfig::default()).unwrap();

    // Half the history exists before the replica connects (tail replay),
    // half is streamed live.
    write_epochs(primary.as_plain().unwrap(), 20);

    let replica = open_engine(r_dir.path());
    let state = Arc::new(ReplicationState::replica());
    let runner = start_replica(Arc::clone(&replica), state, server.local_addr(), fast_opts());

    write_epochs(primary.as_plain().unwrap(), 20);
    let target = primary.as_plain().unwrap().stats().read_epoch;
    wait_until("replica to catch up", Duration::from_secs(10), || {
        replica_gre(&replica) >= target
    });

    let p = primary.as_plain().unwrap();
    let r = replica.as_plain().unwrap();
    assert_eq!(p.vertex_count(), r.vertex_count());
    assert_no_divergence(p, r, 1, target);
    assert!(runner.state().replication_lag() >= 0);

    runner.shutdown();
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Chaos: faulty links must delay, never diverge
// ---------------------------------------------------------------------------

#[test]
fn divergence_oracle_holds_across_link_faults() {
    let p_dir = tempfile::tempdir().unwrap();
    let r_dir = tempfile::tempdir().unwrap();
    let primary = open_engine(p_dir.path());
    let server = Server::start(Arc::clone(&primary), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let proxy = FaultProxy::start(server.local_addr()).unwrap();

    let replica = open_engine(r_dir.path());
    let state = Arc::new(ReplicationState::replica());
    let runner = start_replica(Arc::clone(&replica), state, proxy.addr(), fast_opts());

    let p = primary.as_plain().unwrap();

    // Interleave commits with every fault mode the proxy offers.
    write_epochs(p, 10);
    proxy.truncate_after(512); // cut the stream mid-frame (one-shot)
    write_epochs(p, 10);
    proxy.kill_connections(); // hard disconnect mid-batch
    write_epochs(p, 10);
    proxy.set_refuse(true); // reconnects bounce, backoff kicks in
    write_epochs(p, 10);
    std::thread::sleep(Duration::from_millis(50));
    proxy.set_refuse(false);
    proxy.set_delay(Some(Duration::from_millis(1))); // slow link
    write_epochs(p, 10);
    proxy.set_delay(None);

    let target = p.stats().read_epoch;
    wait_until("replica to converge through faults", Duration::from_secs(20), || {
        replica_gre(&replica) >= target
    });

    assert_no_divergence(p, replica.as_plain().unwrap(), 1, target);
    assert!(!runner.state().replication_failed());

    runner.shutdown();
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn replica_restart_mid_catchup_resumes_from_durable_epoch() {
    let p_dir = tempfile::tempdir().unwrap();
    let r_dir = tempfile::tempdir().unwrap();
    let primary = open_engine(p_dir.path());
    let server = Server::start(Arc::clone(&primary), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let p = primary.as_plain().unwrap();
    write_epochs(p, 60);

    // First incarnation: let it apply part of the history, then stop it.
    let replica = open_engine(r_dir.path());
    let state = Arc::new(ReplicationState::replica());
    let runner = start_replica(Arc::clone(&replica), state, server.local_addr(), fast_opts());
    wait_until("replica to make partial progress", Duration::from_secs(10), || {
        replica_gre(&replica) > 0
    });
    runner.shutdown();
    let resumed_from = replica_gre(&replica);
    drop(replica);

    // The progress survived the restart: recovery replays the replica's own
    // WAL, and the second incarnation resumes from there, not from zero.
    assert!(
        livegraph::core::local_durable_epoch(r_dir.path()).unwrap() >= resumed_from,
        "replica progress must be durable before restart"
    );
    let replica = open_engine(r_dir.path());
    assert!(replica_gre(&replica) >= resumed_from, "restart lost applied epochs");

    let state = Arc::new(ReplicationState::replica());
    let runner = start_replica(Arc::clone(&replica), state, server.local_addr(), fast_opts());
    let target = p.stats().read_epoch;
    wait_until("restarted replica to catch up", Duration::from_secs(10), || {
        replica_gre(&replica) >= target
    });
    assert_no_divergence(p, replica.as_plain().unwrap(), 1, target);

    runner.shutdown();
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Bootstrap: checkpoint + WAL tail, not unbounded history
// ---------------------------------------------------------------------------

#[test]
fn bootstrap_ships_checkpoint_plus_tail_not_full_history() {
    let p_dir = tempfile::tempdir().unwrap();
    let r_dir = tempfile::tempdir().unwrap();
    let primary = open_engine(p_dir.path());
    let server = Server::start(Arc::clone(&primary), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let p = primary.as_plain().unwrap();

    // A checkpoint advances the primary's WAL prune floor: epochs at or
    // below it are only reachable through the checkpoint image.
    write_epochs(p, 40);
    p.checkpoint().unwrap();
    write_epochs(p, 10);
    let floor = p.wal_prune_floor();
    assert!(floor > 0, "checkpoint must advance the prune floor");

    // A fresh replica must come up via the checkpoint, not a WAL replay
    // from epoch 1 (which the primary no longer retains).
    let epoch = bootstrap_replica(r_dir.path(), server.local_addr(), &fast_opts()).unwrap();
    assert!(
        epoch >= floor,
        "bootstrap returned epoch {epoch}, below the prune floor {floor}: \
         that would require unbounded WAL history"
    );

    let replica = open_engine(r_dir.path());
    assert!(replica_gre(&replica) >= floor, "bootstrap image not visible after open");
    let r = replica.as_plain().unwrap();
    // The replica holds a checkpoint image plus a WAL tail, never the full
    // per-epoch history: its own prune floor starts at the image epoch.
    assert!(
        r.wal_prune_floor() >= floor,
        "replica prune floor {} below the primary's {floor}: bootstrap \
         shipped replayable history instead of an image",
        r.wal_prune_floor()
    );

    // Traffic committed *after* the bootstrap streams epoch by epoch, so
    // the divergence oracle has a real per-epoch range to check.
    let state = Arc::new(ReplicationState::replica());
    let runner = start_replica(Arc::clone(&replica), state, server.local_addr(), fast_opts());
    write_epochs(p, 10);
    let target = p.stats().read_epoch;
    wait_until("bootstrapped replica to catch up", Duration::from_secs(10), || {
        replica_gre(&replica) >= target
    });

    // Epochs at or below the image epoch exist on the replica only as the
    // flattened image; per-epoch snapshots are comparable strictly after it.
    assert_no_divergence(p, r, epoch + 1, target);
    assert_eq!(p.vertex_count(), r.vertex_count());

    runner.shutdown();
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Failover: kill the primary, promote the replica, lose nothing acked
// ---------------------------------------------------------------------------

struct ReplicaServer {
    engine: Arc<Engine>,
    server: Server,
    runner: ReplicaRunner,
}

fn start_replica_server(dir: &Path, primary: SocketAddr) -> ReplicaServer {
    let engine = open_engine(dir);
    let state = Arc::new(ReplicationState::replica());
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig::default().with_replication(Arc::clone(&state)),
    )
    .unwrap();
    let runner = start_replica(Arc::clone(&engine), state, primary, fast_opts());
    ReplicaServer { engine, server, runner }
}

#[test]
fn promotion_after_primary_kill_loses_no_acked_commit() {
    let p_dir = tempfile::tempdir().unwrap();
    let r_dir = tempfile::tempdir().unwrap();
    let primary = open_engine(p_dir.path());
    // Semi-sync: a commit is acknowledged only after the replica confirmed
    // its epoch durable — the precondition for zero acked-commit loss.
    let p_state = Arc::new(ReplicationState::primary(1, Duration::from_secs(5)));
    let p_server = Server::start(
        Arc::clone(&primary),
        "127.0.0.1:0",
        ServerConfig::default().with_replication(Arc::clone(&p_state)),
    )
    .unwrap();
    let p_addr = p_server.local_addr();

    let replica = start_replica_server(r_dir.path(), p_addr);
    wait_until("replica to attach to the primary", Duration::from_secs(10), || {
        p_state.connected_replicas() == 1
    });

    // Kill the primary mid-load, from under the writer.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        p_server.shutdown();
    });

    // Commit until the kill; only an Ok response counts as acked. Errors
    // after the kill (severed connection, replication timeout for commits
    // caught mid-gate) are precisely the *un*-acknowledged commits the
    // failover contract says may be lost.
    let mut client = Client::connect(p_addr).unwrap();
    let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
    loop {
        let payload = format!("acked{}", acked.len()).into_bytes();
        match client.create_vertex_auto(&payload) {
            Ok(v) => acked.push((v, payload)),
            Err(_) => break,
        }
    }
    killer.join().unwrap();
    assert!(!acked.is_empty(), "no commit was acked before the kill");

    // Promote over the wire, exactly like a failover controller would.
    let mut rc = Client::connect(replica.server.local_addr()).unwrap();
    let promoted_epoch = rc.promote().unwrap();
    assert!(promoted_epoch > 0);

    // Zero acked-commit loss: every acknowledged write is readable on the
    // promoted primary.
    for (v, payload) in &acked {
        assert_eq!(
            rc.get_vertex(None, *v).unwrap().as_ref(),
            Some(payload),
            "acked commit for vertex {v} lost in failover"
        );
    }

    // And the promoted primary accepts new writes.
    let v = rc.create_vertex_auto(b"post-failover").unwrap();
    assert_eq!(rc.get_vertex(None, v).unwrap(), Some(b"post-failover".to_vec()));

    drop(rc);
    replica.runner.shutdown();
    replica.server.shutdown();
    drop(replica.engine);
}

#[test]
fn replica_rejects_writes_until_promoted() {
    let dir = tempfile::tempdir().unwrap();
    let engine = open_engine(dir.path());
    let state = Arc::new(ReplicationState::replica());
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig::default().with_replication(state),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Explicit transactions, auto-commit writes and checkpoints are all
    // refused with a typed error while the server is a replica.
    for result in [
        client.begin_write().map(|_| ()),
        client.create_vertex_auto(b"x").map(|_| ()),
        client.checkpoint(),
    ] {
        match result {
            Err(ClientError::Server { code: ErrorCode::ReadOnlyReplica, .. }) => {}
            other => panic!("expected ReadOnlyReplica, got {other:?}"),
        }
    }
    // Reads are served.
    assert_eq!(client.get_vertex(None, 0).unwrap(), None);

    client.promote().unwrap();
    let v = client.create_vertex_auto(b"writable").unwrap();
    assert_eq!(client.get_vertex(None, v).unwrap(), Some(b"writable".to_vec()));

    drop(client);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Client socket timeouts (satellite): a wedged server can't hang a client
// ---------------------------------------------------------------------------

#[test]
fn client_io_timeout_turns_a_wedged_server_into_a_typed_error() {
    // A listener that accepts and then never responds.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let wedge = std::thread::spawn(move || {
        let conn = listener.accept().ok().map(|(s, _)| s);
        std::thread::sleep(Duration::from_secs(2));
        drop(conn);
    });

    let mut client =
        Client::connect_with_timeout(addr, Some(Duration::from_millis(100))).unwrap();
    let started = Instant::now();
    match client.ping() {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected an io timeout error, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "timeout did not bound the blocking read"
    );
    assert!(client.is_poisoned(), "a timed-out connection must be poisoned");
    wedge.join().unwrap();
}
