//! Real-time recommendations from the freshest interactions.
//!
//! The paper's introduction motivates real-time analytics with product /
//! connection recommendations that must reflect the user's *most recent*
//! interactions. This example keeps a user–item interaction graph in
//! LiveGraph, computes personalized-PageRank recommendations on the live
//! snapshot, then shows how one new interaction immediately changes the
//! recommendations for the next snapshot — no ETL into a separate engine.
//!
//! Run with: `cargo run --example recommendation`

use livegraph::analytics::{
    personalized_pagerank, top_k_recommendations, LiveSnapshot, PersonalizedPageRankOptions,
};
use livegraph::core::{Label, LiveGraph, LiveGraphOptions, DEFAULT_LABEL};

const CLICKED: Label = DEFAULT_LABEL;

fn main() -> livegraph::core::Result<()> {
    let graph = LiveGraph::open(LiveGraphOptions::in_memory())?;

    // --- Catalogue and historical interactions ------------------------------
    // Vertices 0..10 are users, 10..30 are items; edges are clicks in both
    // directions (user -> item and item -> user) so similar tastes connect.
    let mut setup = graph.begin_write()?;
    let users: Vec<u64> = (0..10)
        .map(|i| setup.create_vertex(format!("user-{i}").as_bytes()))
        .collect::<Result<_, _>>()?;
    let items: Vec<u64> = (0..20)
        .map(|i| setup.create_vertex(format!("item-{i}").as_bytes()))
        .collect::<Result<_, _>>()?;
    // Users 0..5 like "cluster A" items 0..8; users 5..10 like items 8..16.
    for (u, &user) in users.iter().enumerate() {
        for (i, &item) in items.iter().enumerate() {
            let likes_a = u < 5 && i < 8;
            let likes_b = u >= 5 && (8..16).contains(&i);
            if (likes_a || likes_b) && (u + i) % 3 != 0 {
                setup.put_edge(user, CLICKED, item, b"click")?;
                setup.put_edge(item, CLICKED, user, b"clicked-by")?;
            }
        }
    }
    setup.commit()?;

    let shopper = users[2];
    let options = PersonalizedPageRankOptions::default();

    // --- Recommendations before the new interaction --------------------------
    let read = graph.begin_read()?;
    let snapshot = LiveSnapshot::new(&read, CLICKED);
    let before = top_k_recommendations(&snapshot, &[shopper], 5, options);
    println!("top-5 for user-2 before the new click:");
    for (vertex, score) in &before {
        println!("  {} (score {score:.4})", label_of(&read, *vertex));
    }
    assert!(
        before.iter().all(|(v, _)| items[..8].contains(v) || users.contains(v)),
        "cold recommendations stay inside cluster A"
    );

    // --- One fresh interaction crossing the clusters -------------------------
    let crossover_item = items[12];
    let mut txn = graph.begin_write()?;
    txn.put_edge(shopper, CLICKED, crossover_item, b"click")?;
    txn.put_edge(crossover_item, CLICKED, shopper, b"clicked-by")?;
    txn.commit()?;

    // The old snapshot is unchanged; a fresh snapshot reflects the click.
    let fresh = graph.begin_read()?;
    let fresh_snapshot = LiveSnapshot::new(&fresh, CLICKED);
    let after = top_k_recommendations(&fresh_snapshot, &[shopper], 5, options);
    println!("top-5 for user-2 after clicking item-12:");
    for (vertex, score) in &after {
        println!("  {} (score {score:.4})", label_of(&fresh, *vertex));
    }

    // The crossover item (and, through it, cluster B) was unreachable before
    // the click and carries a real score afterwards — computed on the primary
    // store, with no export/reload step in between.
    let score_before = personalized_pagerank(&snapshot, &[shopper], options)[crossover_item as usize];
    let score_after =
        personalized_pagerank(&fresh_snapshot, &[shopper], options)[crossover_item as usize];
    println!(
        "item-12 relevance for user-2: {score_before:.4} before the click, {score_after:.4} after"
    );
    assert_eq!(score_before, 0.0, "cluster B was unreachable before the click");
    assert!(score_after > 0.0, "the fresh interaction must lift item-12 immediately");
    let cluster_b_mass_after: f64 = (8..16)
        .map(|i| personalized_pagerank(&fresh_snapshot, &[shopper], options)[items[i] as usize])
        .sum();
    println!("total relevance now flowing into cluster B: {cluster_b_mass_after:.4}");
    Ok(())
}

fn label_of(read: &livegraph::core::ReadTxn<'_>, vertex: u64) -> String {
    read.get_vertex(vertex)
        .map(|p| String::from_utf8_lossy(p).into_owned())
        .unwrap_or_else(|| format!("vertex-{vertex}"))
}
