//! Real-time analytics on fresh data: PageRank and connected components run
//! *in situ* on a LiveGraph MVCC snapshot while write transactions keep
//! streaming in — the paper's §7.4 scenario, including a comparison with
//! the export-to-CSR (ETL) workflow of a dedicated graph engine.
//!
//! Run with: `cargo run --release --example realtime_analytics`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use livegraph::analytics::{connected_components, pagerank, snapshot_to_csr, LiveSnapshot, PageRankOptions};
use livegraph::core::{LiveGraph, LiveGraphOptions, DEFAULT_LABEL};
use livegraph::workloads::kronecker::{generate_kronecker, KroneckerConfig};

fn main() -> livegraph::core::Result<()> {
    // Load a power-law graph.
    let config = KroneckerConfig::new(14);
    let edges = generate_kronecker(&config);
    let n = config.num_vertices();
    let graph = Arc::new(LiveGraph::open(
        LiveGraphOptions::in_memory()
            .with_capacity(1 << 28)
            .with_max_vertices((n as usize * 2).next_power_of_two()),
    )?);
    let mut txn = graph.begin_write()?;
    txn.create_vertex_with_id(n - 1, b"")?;
    txn.commit()?;
    for chunk in edges.chunks(8192) {
        let mut txn = graph.begin_write()?;
        for &(s, d) in chunk {
            txn.put_edge(s, DEFAULT_LABEL, d, b"")?;
        }
        txn.commit()?;
    }
    println!("loaded {} vertices / {} edges", n, edges.len());

    // Keep ingesting updates in the background while analytics run.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let graph = Arc::clone(&graph);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u64;
            let mut ingested = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut txn = graph.begin_write().expect("begin_write");
                txn.put_edge(i % n, DEFAULT_LABEL, (i * 31 + 7) % n, b"fresh").expect("put_edge");
                txn.commit().expect("commit");
                i += 1;
                ingested += 1;
            }
            ingested
        })
    };

    // In-situ analytics on a consistent snapshot of the live store.
    let read = graph.begin_read()?;
    let snapshot = LiveSnapshot::new(&read, DEFAULT_LABEL);
    let t = Instant::now();
    let ranks = pagerank(&snapshot, PageRankOptions { iterations: 10, damping: 0.85, threads: 4 });
    let pr_in_situ = t.elapsed();
    let t = Instant::now();
    let components = connected_components(&snapshot, 4);
    let cc_in_situ = t.elapsed();

    // The dedicated-engine workflow: ETL to CSR first, then run the kernel.
    let t = Instant::now();
    let csr = snapshot_to_csr(&snapshot);
    let etl = t.elapsed();
    let t = Instant::now();
    let _ = pagerank(&csr, PageRankOptions { iterations: 10, damping: 0.85, threads: 4 });
    let pr_csr = t.elapsed();

    stop.store(true, Ordering::Relaxed);
    let ingested = writer.join().expect("writer panicked");

    let top = ranks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(v, r)| (v, *r))
        .unwrap();
    let component_count = {
        let mut ids: Vec<u64> = components.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    println!("top PageRank vertex: {} (score {:.6})", top.0, top.1);
    println!("connected components: {component_count}");
    println!("in-situ  : PageRank {pr_in_situ:?}, ConnComp {cc_in_situ:?} (no ETL needed)");
    println!("CSR engine: ETL {etl:?} + PageRank {pr_csr:?}");
    println!("updates ingested concurrently with analytics: {ingested}");
    Ok(())
}
