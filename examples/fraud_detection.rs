//! Real-time fraud detection over a transactional transfer graph.
//!
//! One of the motivating applications in the paper's introduction: a
//! financial institution wants to know — while transfers keep committing —
//! whether groups of accounts connected through shared addresses, phone
//! numbers or frequent transfers are issuing fraudulent transactions.
//!
//! The example ingests transfers as write transactions, then runs analytics
//! on a consistent snapshot *without stopping ingestion*:
//!
//! * connected components over the "shares-identity" edges to find suspect
//!   rings,
//! * weighted shortest paths over transfer edges to trace how money moved
//!   between two flagged accounts.
//!
//! Run with: `cargo run --example fraud_detection`

use livegraph::analytics::{connected_components, weighted_distance, GraphSnapshot, LiveSnapshot};
use livegraph::core::{Label, LiveGraph, LiveGraphOptions};

/// Edge labels used by the schema of this example.
const TRANSFER: Label = 0;
const SHARES_IDENTITY: Label = 1;

fn main() -> livegraph::core::Result<()> {
    let graph = LiveGraph::open(LiveGraphOptions::in_memory())?;

    // --- Ingest: accounts plus a background of legitimate transfers ---------
    let mut setup = graph.begin_write()?;
    let accounts: Vec<u64> = (0..40)
        .map(|i| setup.create_vertex(format!("{{\"account\":{i}}}").as_bytes()))
        .collect::<Result<_, _>>()?;
    // A chain of ordinary transfers.
    for w in accounts.windows(2) {
        setup.put_edge(w[0], TRANSFER, w[1], &100u64.to_le_bytes())?;
    }
    setup.commit()?;

    // --- A fraud ring forms in real time ------------------------------------
    // Accounts 3, 7, 11 and 19 register the same phone number and start
    // cycling money between themselves in small amounts.
    let ring = [accounts[3], accounts[7], accounts[11], accounts[19]];
    for pair in ring.windows(2) {
        let mut txn = graph.begin_write()?;
        txn.put_edge(pair[0], SHARES_IDENTITY, pair[1], b"same-phone")?;
        txn.put_edge(pair[1], SHARES_IDENTITY, pair[0], b"same-phone")?;
        txn.put_edge(pair[0], TRANSFER, pair[1], &9_999u64.to_le_bytes())?;
        txn.commit()?;
    }

    // --- Analytics on the live snapshot --------------------------------------
    // The read transaction pins a consistent view; ingestion can continue on
    // other threads while these queries run.
    let read = graph.begin_read()?;
    let identity_graph = LiveSnapshot::new(&read, SHARES_IDENTITY);
    let components = connected_components(&identity_graph, 2);

    // Group accounts by identity-sharing component and flag rings of ≥ 3.
    let mut by_component: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
    for &account in &accounts {
        by_component
            .entry(components[account as usize])
            .or_default()
            .push(account);
    }
    let rings: Vec<&Vec<u64>> = by_component.values().filter(|group| group.len() >= 3).collect();
    println!("identity-sharing rings with ≥3 accounts: {}", rings.len());
    for ring in &rings {
        println!("  suspect ring: {ring:?}");
    }
    assert_eq!(rings.len(), 1, "the injected ring must be detected");

    // --- Trace the money ------------------------------------------------------
    // How cheaply (in number of hops weighted by inverse amount) can money
    // move from the first ring member to the last? Transfer amounts are the
    // edge payloads, decoded by the weight closure.
    let transfer_graph = LiveSnapshot::new(&read, TRANSFER);
    let weight = |src: u64, dst: u64| -> f64 {
        read.get_edge(src, TRANSFER, dst)
            .map(|p| {
                let amount = u64::from_le_bytes(p.try_into().unwrap_or([0; 8])) as f64;
                1.0 / amount.max(1.0) // big transfers = suspiciously "cheap" hops
            })
            .unwrap_or(f64::INFINITY)
    };
    let cost = weighted_distance(&transfer_graph, ring[0], ring[3], weight);
    println!(
        "cheapest transfer path cost {:.6} between ring endpoints (lower = larger amounts)",
        cost.unwrap_or(f64::INFINITY)
    );
    println!(
        "transfer graph: {} accounts, {} transfer edges scanned sequentially",
        transfer_graph.num_vertices(),
        transfer_graph.num_edges()
    );
    Ok(())
}
