//! A social-network workload: concurrent clients inserting follows/posts
//! while readers answer "who should I follow?" style queries — the
//! transactional side of the paper (LinkBench/TAO-like usage).
//!
//! Run with: `cargo run --example social_network`

use std::sync::Arc;

use livegraph::core::{Error, LiveGraph, LiveGraphOptions};

/// Edge labels for the social schema.
const FOLLOWS: u16 = 0;
const POSTED: u16 = 1;
const LIKES: u16 = 2;

fn main() -> livegraph::core::Result<()> {
    let graph = Arc::new(LiveGraph::open(
        LiveGraphOptions::in_memory().with_max_vertices(1 << 20),
    )?);

    // Seed users.
    let users = 2_000u64;
    let mut txn = graph.begin_write()?;
    for u in 0..users {
        txn.create_vertex_with_id(u, format!("user-{u}").as_bytes())?;
    }
    txn.commit()?;

    // Concurrent activity: 4 writer threads follow/post/like, 2 reader
    // threads compute follow recommendations from 2-hop neighbourhoods.
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let graph = Arc::clone(&graph);
        handles.push(std::thread::spawn(move || {
            for i in 0..2_000u64 {
                let a = (t * 2_000 + i * 7) % users;
                let b = (a + 1 + i % 97) % users;
                loop {
                    let mut txn = graph.begin_write().expect("begin_write");
                    let result = (|| {
                        txn.put_edge(a, FOLLOWS, b, b"")?;
                        let post = txn.create_vertex(format!("post by {a}").as_bytes())?;
                        txn.put_edge(a, POSTED, post, b"")?;
                        txn.put_edge(b, LIKES, post, b"")?;
                        Ok::<_, Error>(())
                    })();
                    match result.and_then(|()| txn.commit().map(|_| ())) {
                        Ok(()) => break,
                        Err(Error::WriteConflict { .. }) => continue,
                        Err(e) => panic!("writer failed: {e}"),
                    }
                }
            }
        }));
    }
    for _ in 0..2 {
        let graph = Arc::clone(&graph);
        handles.push(std::thread::spawn(move || {
            let mut recommended = 0usize;
            for u in (0..users).step_by(37) {
                let read = graph.begin_read().expect("begin_read");
                // Friends-of-friends the user does not follow yet.
                let follows: Vec<u64> = read.edges(u, FOLLOWS).map(|e| e.dst).collect();
                let mut candidates = std::collections::HashSet::new();
                for &f in &follows {
                    for edge in read.edges(f, FOLLOWS) {
                        if edge.dst != u && !follows.contains(&edge.dst) {
                            candidates.insert(edge.dst);
                        }
                    }
                }
                recommended += candidates.len();
            }
            println!("reader thread computed {recommended} follow recommendations");
        }));
    }
    for handle in handles {
        handle.join().expect("thread panicked");
    }

    let read = graph.begin_read()?;
    let sample_user = 42;
    println!(
        "user {} follows {} accounts and posted {} times",
        sample_user,
        read.degree(sample_user, FOLLOWS),
        read.degree(sample_user, POSTED)
    );
    let stats = graph.stats();
    println!(
        "graph now has {} vertices, {} committed edge inserts, GRE={}",
        stats.vertex_count, stats.edge_insert_count, stats.read_epoch
    );
    Ok(())
}
