//! Quickstart: open a LiveGraph, run write and read transactions, and scan
//! adjacency lists.
//!
//! Run with: `cargo run --example quickstart`

use livegraph::core::{LiveGraph, LiveGraphOptions, DEFAULT_LABEL};

fn main() -> livegraph::core::Result<()> {
    // A purely in-memory graph. Use `LiveGraphOptions::durable(dir)` to get
    // a write-ahead log and checkpoint/recovery.
    let graph = LiveGraph::open(LiveGraphOptions::in_memory())?;

    // --- Write transaction -------------------------------------------------
    let mut txn = graph.begin_write()?;
    let alice = txn.create_vertex(b"{\"name\":\"alice\"}")?;
    let bob = txn.create_vertex(b"{\"name\":\"bob\"}")?;
    let carol = txn.create_vertex(b"{\"name\":\"carol\"}")?;
    txn.put_edge(alice, DEFAULT_LABEL, bob, b"{\"since\":2019}")?;
    txn.put_edge(alice, DEFAULT_LABEL, carol, b"{\"since\":2021}")?;
    txn.put_edge(bob, DEFAULT_LABEL, carol, b"{\"since\":2022}")?;
    let epoch = txn.commit()?;
    println!("committed initial graph at epoch {epoch}");

    // --- Read transaction: purely sequential adjacency list scans ----------
    let read = graph.begin_read()?;
    println!("alice's vertex: {:?}", String::from_utf8_lossy(read.get_vertex(alice).unwrap()));
    for edge in read.edges(alice, DEFAULT_LABEL) {
        println!(
            "  alice -> {} (props {}, committed at {})",
            edge.dst,
            String::from_utf8_lossy(edge.properties),
            edge.created_at
        );
    }

    // --- Snapshot isolation -------------------------------------------------
    // The old read transaction keeps seeing its snapshot even after updates.
    let mut update = graph.begin_write()?;
    update.delete_edge(alice, DEFAULT_LABEL, bob)?;
    update.commit()?;
    println!(
        "old snapshot still sees {} edges from alice; a new one sees {}",
        read.degree(alice, DEFAULT_LABEL),
        graph.begin_read()?.degree(alice, DEFAULT_LABEL),
    );

    // --- Engine statistics ---------------------------------------------------
    let stats = graph.stats();
    println!(
        "vertices: {}, committed edge inserts: {}, block store occupancy: {:.1}%",
        stats.vertex_count,
        stats.edge_insert_count,
        stats.blocks.occupancy() * 100.0
    );
    Ok(())
}
