//! Historical snapshot analysis with time-travel reads.
//!
//! §6 of the paper notes that the TEL is implicitly a multi-version log and
//! that a user-specified level of historical storage allows full or partial
//! historical snapshot analysis (listed as future work for temporal graph
//! processing). This reproduction implements that extension: with a history
//! retention window configured, `begin_read_at(epoch)` pins a past epoch and
//! every scan sees the graph exactly as it was then.
//!
//! Run with: `cargo run --example time_travel`

use livegraph::analytics::{count_triangles, LiveSnapshot};
use livegraph::core::{LiveGraph, LiveGraphOptions, DEFAULT_LABEL};

fn main() -> livegraph::core::Result<()> {
    let graph = LiveGraph::open(
        LiveGraphOptions::in_memory()
            // Keep every version of the last million epochs: the whole run.
            .with_history_retention(1_000_000),
    )?;

    // --- Day 0: the graph is born --------------------------------------------
    let mut txn = graph.begin_write()?;
    let people: Vec<u64> = (0..6)
        .map(|i| txn.create_vertex(format!("person-{i}").as_bytes()))
        .collect::<Result<_, _>>()?;
    txn.put_edge(people[0], DEFAULT_LABEL, people[1], b"knows")?;
    txn.put_edge(people[1], DEFAULT_LABEL, people[2], b"knows")?;
    let day0 = txn.commit()?;

    // --- Day 1: a triangle closes ---------------------------------------------
    let mut txn = graph.begin_write()?;
    txn.put_edge(people[2], DEFAULT_LABEL, people[0], b"knows")?;
    let day1 = txn.commit()?;

    // --- Day 2: one friendship is unfriended, two more appear ------------------
    let mut txn = graph.begin_write()?;
    txn.delete_edge(people[0], DEFAULT_LABEL, people[1])?;
    txn.put_edge(people[3], DEFAULT_LABEL, people[4], b"knows")?;
    txn.put_edge(people[4], DEFAULT_LABEL, people[5], b"knows")?;
    let day2 = txn.commit()?;

    // --- Analyse each day from the same primary store --------------------------
    for (day, epoch) in [(0, day0), (1, day1), (2, day2)] {
        let past = graph.begin_read_at(epoch)?;
        let snapshot = LiveSnapshot::new(&past, DEFAULT_LABEL);
        let edges: usize = (0..people.len() as u64)
            .map(|p| past.degree(p, DEFAULT_LABEL))
            .sum();
        let triangles = count_triangles(&snapshot, 1);
        println!("day {day} (epoch {epoch}): {edges} edges, {triangles} triangle(s)");
        match day {
            0 => assert_eq!((edges, triangles), (2, 0)),
            1 => assert_eq!((edges, triangles), (3, 1)),
            // Unfriending 0 -> 1 breaks the day-1 triangle again.
            _ => assert_eq!((edges, triangles), (4, 0)),
        }
    }

    // Attempting to read the future is rejected cleanly.
    match graph.begin_read_at(day2 + 1_000) {
        Err(e) => println!("reading a future epoch fails as expected: {e}"),
        Ok(_) => unreachable!("future epochs must not be readable"),
    }

    // The latest snapshot is simply the current read epoch.
    let now = graph.begin_read()?;
    println!(
        "current snapshot (epoch {}): {} people",
        now.read_epoch(),
        now.vertices().count()
    );
    Ok(())
}
