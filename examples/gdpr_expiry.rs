//! Privacy-driven data expiry ("right to be forgotten").
//!
//! The paper lists privacy-related data governance as a motivating workload:
//! expired or erased user data must stop appearing in analytics immediately,
//! while long-running reports that started earlier keep their consistent
//! snapshot. This example deletes a user vertex transactionally, shows the
//! before/after snapshots, and demonstrates that compaction reclaims the
//! deleted user's storage and recycles the id.
//!
//! Run with: `cargo run --example gdpr_expiry`

use livegraph::analytics::{pagerank, LiveSnapshot, PageRankOptions};
use livegraph::core::{LiveGraph, LiveGraphOptions, DEFAULT_LABEL};

fn main() -> livegraph::core::Result<()> {
    let graph = LiveGraph::open(
        LiveGraphOptions::in_memory()
            .with_auto_compaction(false), // compaction is triggered explicitly below
    )?;

    // --- A small social network ---------------------------------------------
    let mut setup = graph.begin_write()?;
    let members: Vec<u64> = (0..8)
        .map(|i| setup.create_vertex(format!("{{\"member\":{i}}}").as_bytes()))
        .collect::<Result<_, _>>()?;
    // Everyone follows the "influencer" (member 0); member 0 follows member 1.
    for &m in &members[1..] {
        setup.put_edge(m, DEFAULT_LABEL, members[0], b"follows")?;
    }
    setup.put_edge(members[0], DEFAULT_LABEL, members[1], b"follows")?;
    setup.commit()?;

    // A compliance report starts now and must stay consistent.
    let report = graph.begin_read()?;
    let report_snapshot = LiveSnapshot::new(&report, DEFAULT_LABEL);
    let ranks_before = pagerank(&report_snapshot, PageRankOptions::default());
    println!(
        "report snapshot: influencer rank {:.4} over {} members",
        ranks_before[members[0] as usize],
        report.vertices().count()
    );

    // --- The influencer invokes their right to erasure -----------------------
    let erased = members[0];
    let mut erase = graph.begin_write()?;
    let existed = erase.delete_vertex(erased)?;
    erase.commit()?;
    println!("erased member 0 (existed = {existed})");

    // New snapshots exclude the erased member entirely.
    let fresh = graph.begin_read()?;
    assert_eq!(fresh.get_vertex(erased), None);
    assert_eq!(fresh.degree(erased, DEFAULT_LABEL), 0);
    println!(
        "fresh snapshot now lists {} members (report still sees {})",
        fresh.vertices().count(),
        report.vertices().count()
    );
    // Note: followers' outgoing "follows" edges towards the erased vertex are
    // the application's responsibility (LiveGraph stores out-adjacency); a
    // real deployment would delete them in the same transaction.

    // The long-running report is unaffected: snapshot isolation.
    let ranks_after = pagerank(&report_snapshot, PageRankOptions::default());
    assert_eq!(ranks_before.len(), ranks_after.len());
    println!("report snapshot is unchanged while new snapshots forget the member");

    // --- Storage reclamation --------------------------------------------------
    // Reclamation is conservative: it waits until no transaction that might
    // still see the erased data is running, so both snapshots are closed
    // before compaction.
    drop(fresh);
    drop(report); // the last snapshot that could still see the erased data
    let before = graph.stats();
    graph.compact(); // retire the erased member's blocks
    graph.compact(); // free them once no transaction can reach them
    let after = graph.stats();
    println!(
        "compaction freed {} blocks ({} live bytes -> {} live bytes)",
        after.compaction.blocks_freed - before.compaction.blocks_freed,
        before.blocks.live_bytes(),
        after.blocks.live_bytes(),
    );

    // The erased id is recycled for the next signup.
    let mut signup = graph.begin_write()?;
    let newcomer = signup.create_vertex(b"{\"member\":\"new\"}")?;
    signup.commit()?;
    println!("new signup reuses vertex id {newcomer} (erased id was {erased})");
    assert_eq!(newcomer, erased);
    assert_eq!(
        graph.begin_read()?.degree(newcomer, DEFAULT_LABEL),
        0,
        "the recycled id starts with a clean adjacency list"
    );
    Ok(())
}
