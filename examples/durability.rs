//! Durability walkthrough: write-ahead logging, checkpointing, crash
//! recovery — §5 (persist phase) and §6 (recovery) of the paper.
//!
//! Run with: `cargo run --example durability`

use livegraph::core::{LiveGraph, LiveGraphOptions, SyncMode, DEFAULT_LABEL};

fn main() -> livegraph::core::Result<()> {
    let dir = std::env::temp_dir().join(format!("livegraph-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = || {
        LiveGraphOptions::durable(&dir)
            .with_max_vertices(1 << 16)
            .with_sync_mode(SyncMode::Fsync)
    };

    // Phase 1: write some data, checkpoint, write some more, then "crash"
    // (drop the graph without any clean shutdown step).
    let (alice, bob, carol);
    {
        let graph = LiveGraph::open(options())?;
        let mut txn = graph.begin_write()?;
        alice = txn.create_vertex(b"alice")?;
        bob = txn.create_vertex(b"bob")?;
        txn.put_edge(alice, DEFAULT_LABEL, bob, b"pre-checkpoint")?;
        txn.commit()?;

        graph.checkpoint()?;
        println!("checkpoint written; WAL pruned to {} bytes", graph.stats().wal_bytes);

        let mut txn = graph.begin_write()?;
        carol = txn.create_vertex(b"carol")?;
        txn.put_edge(alice, DEFAULT_LABEL, carol, b"post-checkpoint")?;
        txn.delete_edge(alice, DEFAULT_LABEL, bob)?;
        txn.commit()?;
        println!("additional transaction committed after the checkpoint");
        // Graph dropped here without further ceremony — a crash.
    }

    // Phase 2: reopen. Recovery loads the checkpoint and replays the WAL.
    {
        let graph = LiveGraph::open(options())?;
        let read = graph.begin_read()?;
        println!("after recovery:");
        println!("  alice  = {:?}", read.get_vertex(alice).map(String::from_utf8_lossy));
        println!("  carol  = {:?}", read.get_vertex(carol).map(String::from_utf8_lossy));
        println!(
            "  alice -> bob   : {:?} (deleted after checkpoint, must stay deleted)",
            read.get_edge(alice, DEFAULT_LABEL, bob)
        );
        println!(
            "  alice -> carol : {:?} (committed only to the WAL)",
            read.get_edge(alice, DEFAULT_LABEL, carol).map(String::from_utf8_lossy)
        );
        assert!(read.get_edge(alice, DEFAULT_LABEL, bob).is_none());
        assert!(read.get_edge(alice, DEFAULT_LABEL, carol).is_some());
        println!("recovery verified ✔");
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
