//! # LiveGraph (reproduction)
//!
//! Facade crate for the LiveGraph reproduction workspace. It re-exports the
//! individual crates under short module names so examples and downstream
//! users can depend on a single crate:
//!
//! * [`core`] — the LiveGraph engine (Transactional Edge Log, MVCC
//!   transactions, WAL, compaction, checkpointing);
//! * [`storage`] — the power-of-two block store;
//! * [`baselines`] — CSR, B+-tree, LSM and linked-list baselines;
//! * [`analytics`] — PageRank, connected components, BFS, ETL;
//! * [`workloads`] — Kronecker, LinkBench-style and SNB-lite workloads;
//! * [`server`] — the networked service layer (binary wire protocol, TCP
//!   server with session-managed transactions, blocking client).
//!
//! ```
//! use livegraph::core::{LiveGraph, LiveGraphOptions, DEFAULT_LABEL};
//!
//! let graph = LiveGraph::open(LiveGraphOptions::in_memory()).unwrap();
//! let mut txn = graph.begin_write().unwrap();
//! let a = txn.create_vertex(b"a").unwrap();
//! let b = txn.create_vertex(b"b").unwrap();
//! txn.put_edge(a, DEFAULT_LABEL, b, b"hello").unwrap();
//! txn.commit().unwrap();
//! assert_eq!(graph.begin_read().unwrap().degree(a, DEFAULT_LABEL), 1);
//! ```
//!
//! The workspace-level architecture map — TEL block layout, the commit
//! path, and the crate dependency graph — lives in `docs/ARCHITECTURE.md`
//! at the repository root.

#![warn(missing_docs)]

pub use livegraph_analytics as analytics;
pub use livegraph_baselines as baselines;
pub use livegraph_core as core;
pub use livegraph_server as server;
pub use livegraph_storage as storage;
pub use livegraph_workloads as workloads;

/// Convenience re-export of the engine type most users start from.
pub use livegraph_core::{LiveGraph, LiveGraphOptions};

/// Convenience re-export of the sharded multi-writer engine (vertices
/// hash-partitioned across N independent shards behind one shared epoch
/// service; see [`core::sharded`]).
pub use livegraph_core::{ShardedGraph, ShardedGraphOptions};

/// Convenience re-export of the service-layer entry points (see
/// [`server`]).
pub use livegraph_server::{Client, Engine, Server, ServerConfig};
